"""Unit tests for core-form expansion and literal lowering."""

import pytest

from repro.errors import ExpandError
from repro.expand import expand_program
from repro.ir import (
    Call,
    Const,
    GlobalRef,
    GlobalSet,
    If,
    Lambda,
    Let,
    Letrec,
    LocalSet,
    Prim,
    Seq,
    Var,
)
from repro.sexpr import read_all


def expand_one(source):
    """Expand source and return the last top-level form."""
    program = expand_program(read_all(source))
    assert program.forms
    return program.forms[-1]


def expand_all(source):
    return expand_program(read_all(source))


# ----------------------------------------------------------------------
# variables, lambda, application
# ----------------------------------------------------------------------


def test_unbound_symbol_is_global_ref():
    node = expand_one("foo")
    assert isinstance(node, GlobalRef) and node.name == "foo"


def test_lambda_params_resolve_to_same_var():
    node = expand_one("(lambda (x) x)")
    assert isinstance(node, Lambda)
    body = node.body
    assert isinstance(body, Var)
    assert body.var is node.params[0]


def test_lambda_shadowing():
    node = expand_one("(lambda (x) (lambda (x) x))")
    inner = node.body
    assert isinstance(inner, Lambda)
    assert inner.body.var is inner.params[0]
    assert inner.body.var is not node.params[0]


def test_variadic_lambda_forms():
    all_rest = expand_one("(lambda args args)")
    assert all_rest.params == [] and all_rest.rest is not None
    mixed = expand_one("(lambda (a b . r) r)")
    assert len(mixed.params) == 2 and mixed.rest is not None
    assert mixed.body.var is mixed.rest


def test_duplicate_params_rejected():
    with pytest.raises(ExpandError):
        expand_one("(lambda (x x) x)")


def test_application():
    node = expand_one("(f 1)")
    assert isinstance(node, Call)
    assert isinstance(node.fn, GlobalRef) and node.fn.name == "f"
    assert len(node.args) == 1


def test_empty_application_is_error():
    with pytest.raises(ExpandError):
        expand_one("()")


# ----------------------------------------------------------------------
# core forms can be shadowed
# ----------------------------------------------------------------------


def test_core_form_shadowed_by_local():
    node = expand_one("(lambda (if) (if 1 2 3))")
    assert isinstance(node.body, Call)
    assert isinstance(node.body.fn, Var)


def test_let_shadowing_of_macro_keyword():
    node = expand_one("(let ((else 1)) else)")
    assert isinstance(node, Let)
    assert isinstance(node.body, Var)


# ----------------------------------------------------------------------
# define / set!
# ----------------------------------------------------------------------


def test_toplevel_define_variants():
    program = expand_all("(define x 1) (define (f a) a) (define (g . r) r)")
    assert program.globals == ["x", "f", "g"]
    assert all(isinstance(form, GlobalSet) for form in program.forms)
    f_def = program.forms[1].value
    assert isinstance(f_def, Lambda) and f_def.name == "f"


def test_set_on_local_marks_assigned():
    node = expand_one("(lambda (x) (set! x 1))")
    assert isinstance(node.body, LocalSet)
    assert node.params[0].assigned


def test_set_on_global():
    node = expand_one("(set! g 5)")
    assert isinstance(node, GlobalSet) and node.name == "g"


def test_set_on_keyword_is_error():
    with pytest.raises(ExpandError):
        expand_one("(set! lambda 1)")


def test_internal_defines_become_letrec():
    node = expand_one("(lambda () (define a 1) (define (b) a) (b))")
    body = node.body
    assert isinstance(body, Letrec)
    assert len(body.bindings) == 2
    # (b)'s reference to a resolves to the letrec binding
    b_lambda = body.bindings[1][1]
    assert isinstance(b_lambda, Lambda)
    assert b_lambda.body.var is body.bindings[0][0]


def test_define_in_expression_position_is_error():
    with pytest.raises(ExpandError):
        expand_one("(lambda () (+ 1 2) (define x 3) x)")


# ----------------------------------------------------------------------
# let family
# ----------------------------------------------------------------------


def test_let_is_parallel():
    # The init of y must not see the x binding.
    node = expand_one("(lambda (x) (let ((x 1) (y x)) y))")
    let = node.body
    assert isinstance(let, Let)
    y_init = let.bindings[1][1]
    assert y_init.var is node.params[0]


def test_let_star_is_sequential():
    node = expand_one("(let* ((x 1) (y x)) y)")
    assert isinstance(node, Let)
    inner = node.body
    assert isinstance(inner, Let)
    assert inner.bindings[0][1].var is node.bindings[0][0]


def test_letrec_sees_itself():
    node = expand_one("(letrec ((f (lambda () (f)))) f)")
    assert isinstance(node, Letrec)
    lam = node.bindings[0][1]
    assert lam.body.fn.var is node.bindings[0][0]


def test_named_let_is_letrec_call():
    node = expand_one("(let loop ((i 0)) (loop i))")
    assert isinstance(node, Letrec)
    assert isinstance(node.body, Call)
    assert node.body.fn.var is node.bindings[0][0]


def test_malformed_let_binding():
    with pytest.raises(ExpandError):
        expand_one("(let ((x)) x)")
    with pytest.raises(ExpandError):
        expand_one("(let (x 1) x)")


# ----------------------------------------------------------------------
# conditionals and booleans
# ----------------------------------------------------------------------


def test_if_wraps_test_against_false():
    node = expand_one("(if x 1 2)")
    assert isinstance(node, If)
    assert isinstance(node.test, Prim) and node.test.op == "%neq"
    assert isinstance(node.test.args[1], GlobalRef)
    assert node.test.args[1].name == "%sx-false"


def test_if_of_comparison_prim_is_raw():
    node = expand_one("(if (%lt (%raw 1) (%raw 2)) 1 2)")
    assert isinstance(node.test, Prim) and node.test.op == "%lt"


def test_if_without_else_uses_unspecified():
    node = expand_one("(if x 1)")
    assert isinstance(node.els, GlobalRef)
    assert node.els.name == "%sx-unspecified"


def test_and_or_expansion():
    node = expand_one("(and a b)")
    assert isinstance(node, If)
    false_branch = node.els
    assert isinstance(false_branch, GlobalRef) and false_branch.name == "%sx-false"
    node = expand_one("(or a b)")
    assert isinstance(node, Let)
    assert isinstance(node.body, If)


def test_empty_and_or():
    assert expand_one("(and)").name == "%sx-true"
    assert expand_one("(or)").name == "%sx-false"


def test_cond_with_else_and_arrow():
    node = expand_one("(cond ((f) => g) (else 9))")
    assert isinstance(node, Let)
    assert isinstance(node.body, If)
    taken = node.body.then
    assert isinstance(taken, Call)
    assert isinstance(taken.fn, GlobalRef) and taken.fn.name == "g"


def test_cond_test_only_clause_yields_test_value():
    node = expand_one("(cond (x) (else 1))")
    assert isinstance(node, Let)
    assert isinstance(node.body.then, Var)


def test_case_expands_to_eqv_chain():
    node = expand_one("(case x ((1 2) 'a) (else 'b))")
    assert isinstance(node, Let)
    assert isinstance(node.body, If)


def test_when_unless():
    node = expand_one("(when x 1)")
    assert isinstance(node, If)
    assert node.els.name == "%sx-unspecified"
    node = expand_one("(unless x 1)")
    assert node.then.name == "%sx-unspecified"


def test_do_loop_shape():
    node = expand_one("(do ((i 0 (+ i 1))) ((= i 3) i))")
    assert isinstance(node, Letrec)
    lam = node.bindings[0][1]
    assert isinstance(lam, Lambda)
    assert isinstance(lam.body, If)


# ----------------------------------------------------------------------
# literals
# ----------------------------------------------------------------------


def test_fixnum_literal_lowering():
    node = expand_one("42")
    assert isinstance(node, Call)
    assert node.fn.name == "%sx-fixnum"
    assert isinstance(node.args[0], Const) and node.args[0].value == 42


def test_negative_fixnum_literal_wraps():
    node = expand_one("-1")
    assert node.args[0].value == (1 << 64) - 1


def test_fixnum_literal_range_check():
    with pytest.raises(ExpandError):
        expand_one(str(1 << 62))


def test_boolean_and_nil_literals():
    assert expand_one("#t").name == "%sx-true"
    assert expand_one("#f").name == "%sx-false"
    assert expand_one("'()").name == "%sx-nil"


def test_char_literal():
    node = expand_one("#\\A")
    assert node.fn.name == "%sx-char"
    assert node.args[0].value == 65


def test_string_literal_is_hoisted():
    program = expand_all('(f "xy")')
    assert any(name.startswith("%lit:") for name in program.globals)
    define = program.forms[0]
    assert isinstance(define, GlobalSet)
    assert isinstance(define.value, Let)


def test_identical_literals_share_one_definition():
    program = expand_all("(f 'sym) (g 'sym)")
    lit_globals = [name for name in program.globals if name.startswith("%lit:")]
    assert len(lit_globals) == 1


def test_quoted_list_uses_library_cons():
    program = expand_all("'(1 2)")
    define = program.forms[0]
    assert isinstance(define.value, Call)
    assert define.value.fn.name == "%sx-cons"


def test_quoted_vector_literal():
    program = expand_all("'#(1 2)")
    define = program.forms[0]
    assert isinstance(define.value, Let)


def test_raw_literal():
    node = expand_one("(%raw 7)")
    assert isinstance(node, Const) and node.value == 7
    node = expand_one("(%raw -1)")
    assert node.value == (1 << 64) - 1


# ----------------------------------------------------------------------
# machine primitives
# ----------------------------------------------------------------------


def test_prim_application():
    node = expand_one("(%add (%raw 1) (%raw 2))")
    assert isinstance(node, Prim) and node.op == "%add"


def test_prim_arity_checked():
    with pytest.raises(ExpandError):
        expand_one("(%add (%raw 1))")


def test_prim_as_value_is_error():
    with pytest.raises(ExpandError):
        expand_one("(f %add)")


def test_prim_shadowable_by_local():
    node = expand_one("(lambda (%add) (%add 1 2 3))")
    assert isinstance(node.body, Call)


# ----------------------------------------------------------------------
# quasiquote
# ----------------------------------------------------------------------


def test_quasiquote_constant():
    node = expand_one("`(1 2)")
    assert isinstance(node, Call)
    assert node.fn.name == "%sx-cons"


def test_quasiquote_unquote():
    node = expand_one("`(a ,b)")
    assert isinstance(node, Call)
    # cadr position should be a direct global reference to b
    inner = node.args[1]
    assert isinstance(inner, Call)
    assert isinstance(inner.args[0], GlobalRef) and inner.args[0].name == "b"


def test_quasiquote_splicing_uses_append():
    node = expand_one("`(,@xs 1)")
    assert node.fn.name == "%sx-append"


def test_nested_quasiquote_preserves_level():
    node = expand_one("``(,a)")
    # outer quasiquote of an inner quasiquote form: builds a list whose
    # head is the symbol quasiquote
    assert isinstance(node, Call)


def test_unquote_outside_quasiquote_is_error():
    with pytest.raises(ExpandError):
        expand_one(",x")


# ----------------------------------------------------------------------
# begin and sequencing
# ----------------------------------------------------------------------


def test_begin_expression():
    node = expand_one("(lambda () (begin 1 2))")
    assert isinstance(node.body, Seq)
    assert len(node.body.exprs) == 2


def test_toplevel_begin_splices():
    program = expand_all("(begin (define a 1) (define b 2))")
    assert program.globals == ["a", "b"]


def test_empty_begin_expression_is_error():
    with pytest.raises(ExpandError):
        expand_one("(lambda () (begin))")


def test_empty_toplevel_begin_is_allowed():
    assert expand_all("(begin)").forms == []
