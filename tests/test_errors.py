"""Failure-injection tests: every runtime error class is reachable and
carries a useful message."""

import pytest

from repro import SchemeError, VMError, run_source

from .conftest import UNOPT, evaluate


@pytest.mark.parametrize(
    "source,pattern",
    [
        ("(car 5)", "non-pair"),
        ("(cdr #t)", "non-pair"),
        ("(set-car! 'x 1)", "non-pair"),
        ("(vector-ref '(1) 0)", "non-vector"),
        ("(vector-ref (vector 1) 5)", "index out of range"),
        ("(vector-ref (vector 1) -2)", "index out of range"),
        ("(string-ref \"a\" 1)", "index out of range"),
        ("(string-ref 'a 0)", "non-string"),
        ("(string-length 5)", "non-string"),
        ("(+ 'a 1)", "non-fixnum"),
        ("(* #\\a 2)", "non-fixnum"),
        ("(< \"a\" 1)", "non-fixnum"),
        ("(quotient 1 0)", "division by zero"),
        ("(remainder 1 0)", "division by zero"),
        ("(char->integer 9)", "non-char"),
        ("(integer->char #\\a)", "non-fixnum"),
        ("(symbol->string \"s\")", "non-symbol"),
        ("((car (list 1)) 2)", "not a procedure"),
        ("(apply 5 '())", "not a procedure"),
        ("(apply car '(1 . 2))", "improper argument list"),
        ("((lambda (x) x))", "arity"),
        ("((lambda (x) x) 1 2)", "arity"),
        ("(error \"user message\")", "error signalled"),
    ],
)
def test_scheme_error_messages(source, pattern):
    with pytest.raises(SchemeError, match=pattern):
        evaluate(source)


def test_undefined_global_names_the_variable():
    with pytest.raises(VMError, match="no-such-variable"):
        evaluate("(no-such-variable)")


def test_forward_reference_to_mutable_global_checked():
    # g is assigned twice, so calls go through the global cell, and a
    # call before the first definition is reported.
    with pytest.raises(VMError, match="undefined global"):
        evaluate("(define (f) (g)) (f) (define (g) 1) (set! g (lambda () 2))")


def test_forward_reference_to_immutable_procedure_links_directly():
    # Documented: single-assignment top-level procedures are linked
    # eagerly (direct calls), so a call textually before the define
    # still reaches the procedure — matching whole-program compilers.
    assert evaluate("(define (f) (g)) (define r (f)) (define (g) 7) r") == 7


def test_deep_non_tail_recursion_overflows():
    with pytest.raises(VMError, match="stack overflow"):
        evaluate("(define (f n) (+ 1 (f n))) (f 0)")


def test_user_level_bad_load_is_caught():
    with pytest.raises(VMError, match="unaligned|bounds"):
        evaluate("(%load (%raw 12345) (%raw 1))")


def test_out_of_bounds_load_is_caught():
    with pytest.raises(VMError, match="bounds"):
        evaluate("(%load (%raw 88888888888) (%raw 0))")


def test_error_output_precedes_failure():
    from repro import compile_source
    from repro.vm import Machine

    compiled = compile_source('(error "custom failure" 42)', UNOPT)
    machine = Machine(compiled.vm_program)
    with pytest.raises(SchemeError):
        machine.run()
    assert "custom failure" in "".join(machine.output)
    assert "42" in "".join(machine.output)


def test_unsafe_mode_skips_checks():
    # In unsafe mode a type error is undefined behaviour, not a check:
    # (car 8) loads from address 8+7... which is at least not a crash of
    # the host — the VM still validates raw addresses.
    from repro import CompileOptions

    options = CompileOptions.unoptimized(safety=False)
    result = run_source("(car (cons 1 2))", options)
    assert result.value == 8  # fixnum 1


def test_errors_are_repro_errors():
    from repro import ReproError

    with pytest.raises(ReproError):
        evaluate("(car 5)")
