"""Unit and property tests for the machine-primitive fold semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import prims
from repro.prims import FoldCannot, fold, signed, wrap

words = st.integers(min_value=0, max_value=2**64 - 1)


def test_table_contents():
    table = prims.all_prims()
    assert "%add" in table and "%load" in table
    assert table["%add"].pure
    assert table["%add"].fold is not None
    assert not table["%store"].pure
    assert table["%load"].removable
    assert not table["%store"].removable
    assert table["%eq"].comparison
    assert not table["%add"].comparison


def test_lookup_and_spec():
    assert prims.lookup("%nope") is None
    assert prims.spec("%add").arity == 2
    with pytest.raises(KeyError):
        prims.spec("%nope")
    assert prims.is_prim_name("%mul")
    assert not prims.is_prim_name("car")


def test_wrap_and_signed():
    assert wrap(-1) == 2**64 - 1
    assert signed(2**64 - 1) == -1
    assert signed(5) == 5
    assert wrap(2**64 + 3) == 3
    assert signed(2**63) == -(2**63)


@given(words, words)
def test_add_sub_inverse(a, b):
    assert fold.fold_sub(fold.fold_add(a, b), b) == a


@given(words)
def test_not_involution(a):
    assert fold.fold_not(fold.fold_not(a)) == a


@given(words, words)
def test_xor_self_inverse(a, b):
    assert fold.fold_xor(fold.fold_xor(a, b), b) == a


@given(words)
def test_shift_identity(a):
    assert fold.fold_lsl(a, 0) == a
    assert fold.fold_lsr(a, 0) == a
    assert fold.fold_asr(a, 0) == a


@given(words, st.integers(min_value=0, max_value=63))
def test_lsr_then_lsl_masks(a, n):
    masked = fold.fold_lsl(fold.fold_lsr(a, n), n)
    assert masked == (a & wrap(~((1 << n) - 1)))


@given(st.integers(min_value=-(2**60), max_value=2**60), st.integers(min_value=0, max_value=3))
def test_asr_is_arithmetic(value, n):
    assert signed(fold.fold_asr(wrap(value), n)) == value >> n


def test_shift_amount_wraps_at_64():
    assert fold.fold_lsl(1, 64) == 1  # hardware-style: count & 63
    assert fold.fold_lsl(1, 65) == 2


@given(words, words)
def test_comparisons_are_boolean(a, b):
    for fn in (fold.fold_eq, fold.fold_neq, fold.fold_lt, fold.fold_le,
               fold.fold_ult, fold.fold_ule):
        assert fn(a, b) in (0, 1)
    assert fold.fold_eq(a, b) ^ fold.fold_neq(a, b) == 1


@given(words, words)
def test_signed_comparison_matches_python(a, b):
    assert fold.fold_lt(a, b) == (1 if signed(a) < signed(b) else 0)
    assert fold.fold_ult(a, b) == (1 if a < b else 0)


def test_division_semantics_truncate_toward_zero():
    assert signed(fold.fold_div(wrap(7), wrap(2))) == 3
    assert signed(fold.fold_div(wrap(-7), wrap(2))) == -3
    assert signed(fold.fold_div(wrap(7), wrap(-2))) == -3
    assert signed(fold.fold_mod(wrap(7), wrap(2))) == 1
    assert signed(fold.fold_mod(wrap(-7), wrap(2))) == -1
    assert signed(fold.fold_mod(wrap(7), wrap(-2))) == 1


def test_division_by_zero_raises_foldcannot():
    with pytest.raises(FoldCannot):
        fold.fold_div(1, 0)
    with pytest.raises(FoldCannot):
        fold.fold_mod(1, 0)


@given(st.integers(min_value=-(2**31), max_value=2**31),
       st.integers(min_value=-(2**31), max_value=2**31))
def test_mul_matches_python_in_range(a, b):
    assert signed(fold.fold_mul(wrap(a), wrap(b))) == a * b


@given(st.integers(min_value=-(2**31), max_value=2**31),
       st.integers(min_value=-(2**31), max_value=2**31).filter(lambda x: x != 0))
def test_div_mod_identity(a, b):
    q = signed(fold.fold_div(wrap(a), wrap(b)))
    r = signed(fold.fold_mod(wrap(a), wrap(b)))
    assert q * b + r == a
    assert abs(r) < abs(b)
