"""Unit tests for the optimizer passes.

These assert the *shapes* the paper relies on: abstract representation
code collapsing to single machine operations.
"""

import pytest

from repro.expand import expand_program
from repro.ir import (
    Call,
    Const,
    Fix,
    GlobalSet,
    If,
    Lambda,
    Let,
    Prim,
    Var,
    iter_tree,
    pretty,
)
from repro.opt import OptimizerOptions, optimize_program
from repro.sexpr import read_all


def optimize(source, **kwargs):
    kwargs.setdefault("prune_globals", False)
    program = expand_program(read_all(source))
    return optimize_program(program, OptimizerOptions(**kwargs))


def body_of(program, name):
    for form in program.forms:
        if isinstance(form, GlobalSet) and form.name == name:
            assert isinstance(form.value, Lambda), pretty(form.value)
            return form.value.body
    raise AssertionError(f"no definition of {name}")


def defn_of(program, name):
    for form in program.forms:
        if isinstance(form, GlobalSet) and form.name == name:
            return form.value
    raise AssertionError(f"no definition of {name}")


MICRO_PRELUDE = """
(define (%sx-fixnum raw) (%lsl raw (%raw 3)))
(define %sx-false (%or (%lsl (%raw 0) (%raw 8)) (%raw 6)))
(define %sx-true (%or (%lsl (%raw 1) (%raw 8)) (%raw 6)))
(define %sx-unspecified (%or (%lsl (%raw 3) (%raw 8)) (%raw 6)))
"""


# ----------------------------------------------------------------------
# constant folding and propagation
# ----------------------------------------------------------------------


def test_fold_fixnum_literal():
    program = optimize(MICRO_PRELUDE + "(define (f) 5)")
    body = body_of(program, "f")
    assert isinstance(body, Const) and body.value == 40


def test_fold_arith_chain():
    program = optimize(MICRO_PRELUDE + "(define (f) (%add (%raw 1) (%mul (%raw 3) (%raw 4))))")
    assert body_of(program, "f").value == 13


def test_global_constant_propagation():
    program = optimize(MICRO_PRELUDE + "(define k (%raw 10)) (define (f) k)")
    assert body_of(program, "f").value == 10


def test_mutated_global_not_propagated():
    program = optimize(
        MICRO_PRELUDE + "(define k (%raw 10)) (define (f) k) (set! k (%raw 11))"
    )
    body = body_of(program, "f")
    assert not isinstance(body, Const)


def test_division_by_zero_not_folded():
    program = optimize(MICRO_PRELUDE + "(define (f) (%div (%raw 1) (%raw 0)))")
    body = body_of(program, "f")
    assert isinstance(body, Prim) and body.op == "%div"


def test_let_constant_propagates():
    program = optimize(MICRO_PRELUDE + "(define (f x) (let ((a (%raw 7))) (%add x a)))")
    body = body_of(program, "f")
    assert isinstance(body, Prim)
    assert isinstance(body.args[1], Const) and body.args[1].value == 7


def test_assigned_local_not_propagated():
    program = optimize(
        MICRO_PRELUDE
        + "(define (f x) (let ((a (%raw 7))) (set! a x) (%add x a)))"
    )
    body = body_of(program, "f")
    assert isinstance(body, Let)


# ----------------------------------------------------------------------
# inlining and beta
# ----------------------------------------------------------------------


def test_toplevel_procedure_inlined():
    program = optimize(
        MICRO_PRELUDE
        + "(define (add2 a) (%add a (%raw 2))) (define (g a) (add2 (add2 a)))"
    )
    body = body_of(program, "g")
    assert isinstance(body, Prim) and body.op == "%add"
    assert body.args[1].value == 4


def test_recursive_procedure_not_inlined():
    program = optimize(
        MICRO_PRELUDE
        + """(define (loop n) (if (%eq n (%raw 0)) (%raw 1) (loop (%sub n (%raw 1)))))
            (define (g) (loop (%raw 5)))"""
    )
    body = body_of(program, "g")
    assert isinstance(body, Call)


def test_mutually_recursive_not_inlined():
    program = optimize(
        MICRO_PRELUDE
        + """(define (even? n) (if (%eq n (%raw 0)) %sx-true (odd? (%sub n (%raw 1)))))
            (define (odd? n) (if (%eq n (%raw 0)) %sx-false (even? (%sub n (%raw 1)))))
            (define (g) (even? (%raw 4)))"""
    )
    assert isinstance(body_of(program, "g"), Call)


def test_local_lambda_inlined():
    program = optimize(
        MICRO_PRELUDE + "(define (f x) (let ((g (lambda (y) (%add y (%raw 1))))) (g x)))"
    )
    body = body_of(program, "f")
    assert isinstance(body, Prim) and body.op == "%add"


def test_beta_reduction_of_direct_lambda_call():
    program = optimize(MICRO_PRELUDE + "(define (f x) ((lambda (y) (%add y y)) x))")
    body = body_of(program, "f")
    assert isinstance(body, Prim)


def test_inline_size_budget_respected():
    # A body that cannot fold smaller: 40 loads at distinct offsets.
    chain = "(%raw 0)"
    for i in range(40):
        chain = f"(%add {chain} (%load x (%raw {i * 8})))"
    # Two call sites: the single-use exemption must not apply.
    source = MICRO_PRELUDE + (
        f"(define (big x) {chain})"
        "(define (g a) (big a))"
        "(define (h a) (big a))"
    )
    program = optimize(source, max_inline_size=10)
    assert isinstance(body_of(program, "g"), Call)
    assert isinstance(body_of(program, "h"), Call)


def test_single_use_inlined_despite_size():
    chain = "(%raw 0)"
    for i in range(40):
        chain = f"(%add {chain} (%load x (%raw {i * 8})))"
    source = MICRO_PRELUDE + f"(define (big x) {chain}) (define (g a) (big a))"
    program = optimize(source, max_inline_size=10)
    body = body_of(program, "g")
    assert isinstance(body, Prim)  # inlined: body is the %add chain


def test_closure_factory_specializes():
    # The paper's central pattern: a factory over constants yields a
    # closure whose body folds completely.
    program = optimize(
        MICRO_PRELUDE
        + """(define (%ptr-accessor tag i)
              (lambda (x) (%load x (%sub (%mul (%add i (%raw 1)) (%raw 8)) tag))))
            (define car (%ptr-accessor (%raw 1) (%raw 0)))"""
    )
    car = defn_of(program, "car")
    assert isinstance(car, Lambda)
    assert isinstance(car.body, Prim) and car.body.op == "%load"
    assert car.body.args[1].value == 7


def test_call_of_specialized_accessor_open_codes():
    program = optimize(
        MICRO_PRELUDE
        + """(define (%ptr-accessor tag i)
              (lambda (x) (%load x (%sub (%mul (%add i (%raw 1)) (%raw 8)) tag))))
            (define car (%ptr-accessor (%raw 1) (%raw 0)))
            (define (first x) (car x))"""
    )
    body = body_of(program, "first")
    assert isinstance(body, Prim) and body.op == "%load"


# ----------------------------------------------------------------------
# branch simplification
# ----------------------------------------------------------------------


def test_if_of_constant_folds():
    program = optimize(MICRO_PRELUDE + "(define (f) (if (%eq (%raw 1) (%raw 1)) (%raw 5) (%raw 6)))")
    assert body_of(program, "f").value == 5


def test_predicate_in_test_position_becomes_branch():
    # (if (pair? x) a b) where pair? returns #t/#f must compile to a
    # single tag-compare branch, with the booleans gone.
    program = optimize(
        MICRO_PRELUDE
        + """(define (pair? x) (if (%eq (%and x (%raw 7)) (%raw 1)) %sx-true %sx-false))
            (define (f x) (if (pair? x) (%raw 1) (%raw 2)))"""
    )
    body = body_of(program, "f")
    assert isinstance(body, If)
    assert isinstance(body.test, Prim) and body.test.op == "%eq"
    assert isinstance(body.then, Const) and body.then.value == 1


def test_same_constant_branches_collapse():
    program = optimize(MICRO_PRELUDE + "(define (f x) (if (%eq x (%raw 0)) (%raw 7) (%raw 7)))")
    body = body_of(program, "f")
    assert isinstance(body, Const) and body.value == 7


def test_nz_of_comparison_dropped():
    program = optimize(MICRO_PRELUDE + "(define (f x) (if (%nz (%lt x (%raw 5))) (%raw 1) (%raw 0)))")
    body = body_of(program, "f")
    assert isinstance(body.test, Prim) and body.test.op == "%lt"


# ----------------------------------------------------------------------
# algebraic simplification
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "expr,expected",
    [
        ("(%add x (%raw 0))", "x"),
        ("(%mul x (%raw 1))", "x"),
        ("(%and x (%raw -1))", "x"),
        ("(%or x (%raw 0))", "x"),
        ("(%xor x x)", "0"),
        ("(%sub x x)", "0"),
        ("(%lsl x (%raw 0))", "x"),
    ],
)
def test_identity_rules(expr, expected):
    program = optimize(MICRO_PRELUDE + f"(define (f x) {expr})")
    body = body_of(program, "f")
    if expected == "x":
        assert isinstance(body, Var)
    else:
        assert isinstance(body, Const) and body.value == int(expected)


def test_shift_reassociation():
    program = optimize(MICRO_PRELUDE + "(define (f x) (%lsl (%lsl x (%raw 2)) (%raw 3)))")
    body = body_of(program, "f")
    assert body.op == "%lsl" and body.args[1].value == 5


def test_untag_retag_becomes_mask():
    program = optimize(MICRO_PRELUDE + "(define (f x) (%lsl (%asr x (%raw 3)) (%raw 3)))")
    body = body_of(program, "f")
    assert body.op == "%and"
    assert body.args[1].value == (2**64 - 8)


def test_add_chain_reassociates_through_let():
    program = optimize(
        MICRO_PRELUDE
        + "(define (g a) (let ((t (%add a (%raw 16)))) (%add t (%raw 16))))"
    )
    body = body_of(program, "g")
    assert isinstance(body, Prim) and body.op == "%add"
    assert body.args[1].value == 32


# ----------------------------------------------------------------------
# CSE and check elimination
# ----------------------------------------------------------------------


def test_dominating_check_elimination():
    program = optimize(
        MICRO_PRELUDE
        + """(define (safe-car x)
              (if (%eq (%and x (%raw 7)) (%raw 1)) (%load x (%raw 7)) (%fail (%raw 1))))
            (define (f x)
              (if (%eq (%and x (%raw 7)) (%raw 1)) (safe-car x) (%raw 0)))"""
    )
    body = body_of(program, "f")
    assert isinstance(body, If)
    # the inner check must be gone: then-branch is the bare load
    assert isinstance(body.then, Prim) and body.then.op == "%load"
    fails = [n for n in iter_tree(body) if isinstance(n, Prim) and n.op == "%fail"]
    assert not fails


def test_available_expression_reuse():
    program = optimize(
        MICRO_PRELUDE
        + """(define (f x)
              (let ((a (%and x (%raw 7))))
                (let ((b (%and x (%raw 7))))
                  (%add a b))))"""
    )
    body = body_of(program, "f")
    ands = [n for n in iter_tree(body) if isinstance(n, Prim) and n.op == "%and"]
    assert len(ands) == 1


def test_load_not_reused_across_store():
    program = optimize(
        MICRO_PRELUDE
        + """(define (f x v)
              (let ((a (%load x (%raw 7))))
                (begin
                  (%store x (%raw 7) v)
                  (let ((b (%load x (%raw 7))))
                    (%add a b)))))"""
    )
    body = body_of(program, "f")
    loads = [n for n in iter_tree(body) if isinstance(n, Prim) and n.op == "%load"]
    assert len(loads) == 2


def test_load_reused_without_store():
    program = optimize(
        MICRO_PRELUDE
        + """(define (f x)
              (let ((a (%load x (%raw 7))))
                (let ((b (%load x (%raw 7))))
                  (%add a b))))"""
    )
    body = body_of(program, "f")
    loads = [n for n in iter_tree(body) if isinstance(n, Prim) and n.op == "%load"]
    assert len(loads) == 1


# ----------------------------------------------------------------------
# dead-code elimination
# ----------------------------------------------------------------------


def test_unused_pure_binding_dropped():
    program = optimize(MICRO_PRELUDE + "(define (f x) (let ((u (%add x (%raw 1)))) x))")
    body = body_of(program, "f")
    assert isinstance(body, Var)


def test_unused_effectful_binding_keeps_effect():
    program = optimize(
        MICRO_PRELUDE + "(define (f x v) (let ((u (%store x (%raw 7) v))) x))"
    )
    body = body_of(program, "f")
    stores = [n for n in iter_tree(body) if isinstance(n, Prim) and n.op == "%store"]
    assert len(stores) == 1


def test_unused_fix_binding_dropped():
    program = optimize(
        MICRO_PRELUDE
        + """(define (f x)
              (letrec ((unused (lambda (n) (unused n))))
                x))"""
    )
    body = body_of(program, "f")
    assert isinstance(body, Var)


def test_prune_unreferenced_globals():
    program = expand_program(
        read_all(MICRO_PRELUDE + "(define (unused) (%raw 1)) (%raw 42)")
    )
    optimized = optimize_program(program, OptimizerOptions())
    names = [form.name for form in optimized.forms if isinstance(form, GlobalSet)]
    assert "unused" not in names
    assert "%sx-fixnum" not in names  # prelude pruned too


# ----------------------------------------------------------------------
# letrec fixing
# ----------------------------------------------------------------------


def test_letrec_of_lambdas_becomes_fix():
    program = optimize(
        MICRO_PRELUDE
        + """(define (f n)
              (letrec ((loop (lambda (i) (if (%eq i n) i (loop (%add i (%raw 1)))))))
                (loop (%raw 0))))""",
        inline=False,
    )
    body = body_of(program, "f")
    assert isinstance(body, Fix)


def test_letrec_complex_init_uses_boxes_later():
    source = MICRO_PRELUDE + """
        (define (g) (%raw 5))
        (define (f) (letrec ((a (g)) (b (lambda () a))) (b)))
    """
    program = optimize(source, inline=False)
    body = body_of(program, "f")
    # complex init became a set!-style initialisation under a let
    assert isinstance(body, Let)


# ----------------------------------------------------------------------
# the "optimizer off" configuration
# ----------------------------------------------------------------------


def test_none_options_preserve_calls():
    program = expand_program(
        read_all(MICRO_PRELUDE + "(define (f) 5) (define (g) (f))")
    )
    options = OptimizerOptions.none()
    options.prune_globals = False
    optimized = optimize_program(program, options)
    body = body_of(optimized, "g")
    assert isinstance(body, Call)
    body = body_of(optimized, "f")
    assert isinstance(body, Call)  # %sx-fixnum call not folded


def test_forwarding_does_not_move_reads_of_assigned_vars():
    # Regression: (let ((tmp p)) (set! p q) (set! q tmp)) must read p
    # *before* the assignments (the classic swap macro).
    program = optimize(
        MICRO_PRELUDE
        + """(define (f p q)
              (begin
                (let ((tmp p)) (begin (set! p q) (set! q tmp)))
                (if (%eq p (%raw 2)) (%eq q (%raw 1)) (%raw 0))))"""
    )
    body = body_of(program, "f")
    # the read of p must still be bound before the first set!
    text = pretty(body)
    first_set = text.index("set!")
    assert "tmp" in text[:first_set] or "(let" in text[:first_set], text


def test_hoist_does_not_reorder_assigned_reads():
    program = optimize(
        MICRO_PRELUDE
        + """(define (f p)
              (%add p (begin (set! p (%raw 5)) (%raw 1))))"""
    )
    body = body_of(program, "f")
    # %add's first operand is the *old* p: the hoist must not have put
    # the set! first with a direct read of p afterwards.
    assert not (
        isinstance(body, type(body))
        and pretty(body).startswith("(begin (set!")
    ), pretty(body)


def test_without_returns_modified_copy():
    options = OptimizerOptions()
    ablated = options.without("inline")
    assert ablated.inline is False and options.inline is True
    with pytest.raises(ValueError):
        options.without("nonsense")
