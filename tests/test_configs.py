"""Cross-configuration tests: the optimizer and the baseline prelude
must be semantically transparent.

This is the reproduction's soundness backstop for the paper's claim —
"O" (abstract + optimizer), "B" (hand-coded), and "U" (optimizer off)
must compute identical values and identical output, differing only in
instruction counts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, OptimizerOptions, decode, run_source

from .conftest import BASE, OPT, UNOPT, UNSAFE

PROGRAMS = [
    "(+ 1 2)",
    "(let loop ((i 0) (s 0)) (if (= i 50) s (loop (+ i 1) (+ s i))))",
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)",
    "(length (reverse (append '(1 2 3) '(4 5))))",
    "(sort '(5 3 9 1 7 2) <)",
    "(map (lambda (x) (* x x)) '(1 2 3 4))",
    '(string-append "abc" (number->string 42))',
    "(let ((v (make-vector 10 0)))"
    "  (let loop ((i 0)) (if (= i 10) (vector-ref v 7)"
    "    (begin (vector-set! v i (* i i)) (loop (+ i 1))))))",
    "(assq 'c '((a 1) (b 2) (c 3)))",
    "(equal? '(1 (2 #(3 \"x\"))) '(1 (2 #(3 \"x\"))))",
    "(apply + 1 '(2))",
    "((lambda (a . r) (cons a (length r))) 1 2 3 4)",
    "(do ((i 0 (+ i 1)) (s 1 (* s 2))) ((= i 8) s))",
    "(rep-name (rep-of (cons 1 2)))",
    "(char->integer (string-ref (symbol->string 'hey) 1))",
    "(modulo -17 5)",
    "(expt 3 7)",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_all_configurations_agree(source):
    reference = None
    for options in (UNOPT, OPT, BASE, UNSAFE):
        result = run_source(source, options)
        value = decode(result)
        if reference is None:
            reference = value
        else:
            assert value == reference, f"config mismatch on {source!r}"


@pytest.mark.parametrize("source", PROGRAMS[:6])
def test_optimized_executes_fewer_instructions(source):
    unopt = run_source(source, UNOPT).steps
    opt = run_source(source, OPT).steps
    assert opt < unopt


def test_output_identical_across_configs():
    source = "(display (sort '(3 1 2) <)) (newline) (write \"q\")"
    outputs = {run_source(source, o).output for o in (UNOPT, OPT, BASE, UNSAFE)}
    assert outputs == {'(1 2 3)\n"q"'}


# ----------------------------------------------------------------------
# ablations still compute correct results
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "feature", ["inline", "fold", "algebra", "cse", "absint", "dce"]
)
def test_each_ablation_is_sound(feature):
    options = CompileOptions(optimizer=OptimizerOptions().without(feature))
    source = PROGRAMS[2]
    assert decode(run_source(source, options)) == 144


# ----------------------------------------------------------------------
# property: random arithmetic expressions agree across configs and with
# a Python evaluator
# ----------------------------------------------------------------------

_INTS = st.integers(min_value=-100, max_value=100)


def _exprs(depth):
    if depth == 0:
        return _INTS.map(lambda n: (str(n), n))
    sub = _exprs(depth - 1)

    def combine(op, a, b):
        text = f"({op} {a[0]} {b[0]})"
        if op == "+":
            return (text, a[1] + b[1])
        if op == "-":
            return (text, a[1] - b[1])
        if op == "*":
            return (text, a[1] * b[1])
        if op == "min":
            return (text, min(a[1], b[1]))
        return (text, max(a[1], b[1]))

    return st.one_of(
        sub,
        st.tuples(st.sampled_from(["+", "-", "*", "min", "max"]), sub, sub).map(
            lambda t: combine(*t)
        ),
    )


@settings(max_examples=20, deadline=None)
@given(_exprs(3))
def test_random_arithmetic_matches_python(expr):
    text, expected = expr
    assert decode(run_source(text, UNOPT)) == expected
    assert decode(run_source(text, OPT)) == expected


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=12))
def test_sort_property(values):
    from repro.sexpr import from_list

    listed = "(list " + " ".join(str(v) for v in values) + ")"
    result = decode(run_source(f"(sort {listed} <)", UNOPT))
    assert result == from_list(sorted(values))


@settings(max_examples=15, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=15))
def test_string_round_trip_property(text):
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    result = run_source(f'(display "{escaped}")', UNOPT)
    assert result.output == text
