"""Unit tests for the backend passes: assignment conversion, peephole,
and code generation details."""

import pytest

from repro.backend.assignconv import convert_assignments
from repro.backend.peephole import peephole
from repro.errors import CompileError
from repro.ir import (
    Call,
    Const,
    GlobalSet,
    Lambda,
    Let,
    LocalSet,
    LocalVar,
    Prim,
    Program,
    Seq,
    Var,
    iter_tree,
)
from repro.vm import isa


# ----------------------------------------------------------------------
# assignment conversion
# ----------------------------------------------------------------------


def test_unassigned_code_untouched():
    x = LocalVar("x")
    node = Lambda([x], None, Var(x), "f")
    converted = convert_assignments(node)
    assert isinstance(converted.body, Var)


def test_assigned_param_becomes_cell():
    x = LocalVar("x")
    x.assigned = True
    node = Lambda([x], None, Seq([LocalSet(x, Const(1)), Var(x)]), "f")
    converted = convert_assignments(node)
    # body: Let((box, make-cell(x))) with stores/loads inside
    assert isinstance(converted.body, Let)
    ops = [n.op for n in iter_tree(converted.body) if isinstance(n, Prim)]
    assert "%alloc" in ops
    assert ops.count("%store") >= 2  # init + set!
    assert "%load" in ops  # the read
    sets = [n for n in iter_tree(converted) if isinstance(n, LocalSet)]
    assert not sets


def test_assigned_let_binding_becomes_cell():
    x = LocalVar("x")
    x.assigned = True
    node = Let([(x, Const(5))], Seq([LocalSet(x, Const(6)), Var(x)]))
    converted = convert_assignments(node)
    sets = [n for n in iter_tree(converted) if isinstance(n, LocalSet)]
    assert not sets
    allocs = [n for n in iter_tree(converted) if isinstance(n, Prim) and n.op == "%alloc"]
    assert len(allocs) == 1
    # cells use the compiler-owned tag 7
    assert allocs[0].args[1].value == 7


def test_assigned_rest_param_boxed():
    r = LocalVar("r")
    r.assigned = True
    node = Lambda([], r, Seq([LocalSet(r, Const(0)), Var(r)]), "f")
    converted = convert_assignments(node)
    assert isinstance(converted.body, Let)


# ----------------------------------------------------------------------
# peephole
# ----------------------------------------------------------------------


def make_code(instructions, nparams=0):
    code = isa.CodeObject("t", nparams, False, 0)
    code.instructions = [list(ins) for ins in instructions]
    code.nregs = 32
    return code


def test_mov_fusion():
    code = make_code(
        [
            [isa.ADD, 5, 0, 1],
            [isa.MOV, 2, 5],
            [isa.RET, 2],
        ]
    )
    peephole(code)
    assert code.instructions == [[isa.ADD, 2, 0, 1], [isa.RET, 2]]


def test_mov_not_fused_when_temp_reused():
    code = make_code(
        [
            [isa.ADD, 5, 0, 1],
            [isa.MOV, 2, 5],
            [isa.ADD, 3, 5, 2],
            [isa.RET, 3],
        ]
    )
    peephole(code)
    assert code.instructions[0] == [isa.ADD, 5, 0, 1]  # untouched


def test_mov_not_fused_into_branch_target():
    # instruction 1 is a jump target: the MOV must survive
    code = make_code(
        [
            [isa.ADD, 5, 0, 1],
            [isa.MOV, 2, 5],
            [isa.JMP, 1],
        ]
    )
    peephole(code)
    assert any(ins[0] == isa.MOV for ins in code.instructions)


def test_trivial_jump_removed_and_targets_remapped():
    code = make_code(
        [
            [isa.JMP, 1],       # trivial: falls through anyway
            [isa.LDC, 0, 1],
            [isa.JMP, 1],       # backward jump, must be remapped to 0
        ]
    )
    peephole(code)
    assert code.instructions[0] == [isa.LDC, 0, 1]
    assert code.instructions[1] == [isa.JMP, 0]


# ----------------------------------------------------------------------
# code generation details (through the full pipeline, no prelude)
# ----------------------------------------------------------------------


def compile_bare(source, optimize=False):
    """Compile machine-primitive-only source without any prelude."""
    from repro import CompileOptions, OptimizerOptions, compile_source

    options = CompileOptions(
        optimizer=OptimizerOptions() if optimize else OptimizerOptions.none(),
        prelude="none",
    )
    options.optimizer.prune_globals = False
    return compile_source(source, options)


def run_bare(source, **kwargs):
    from repro.vm import Machine

    compiled = compile_bare(source)
    return Machine(compiled.vm_program, **kwargs).run()


def test_bare_arithmetic():
    assert run_bare("(%add (%raw 2) (%raw 3))").value == 5


def test_bare_if_and_compare_fusion():
    compiled = compile_bare("(define (f a b) (if (%lt a b) (%raw 1) (%raw 2)))")
    code = compiled.vm_program.code_named("f")
    assert any(ins[0] == isa.JGE for ins in code.instructions)


def test_eq_const_test_uses_jnei():
    compiled = compile_bare("(define (f a) (if (%eq a (%raw 5)) (%raw 1) (%raw 2)))")
    code = compiled.vm_program.code_named("f")
    assert any(ins[0] == isa.JNEI for ins in code.instructions)


def test_tail_call_in_tail_position_only():
    compiled = compile_bare(
        "(define (f a) (f a)) (define (g a) (%add (g a) (%raw 1)))"
    )
    f_code = compiled.vm_program.code_named("f")
    assert any(ins[0] == isa.TAILL for ins in f_code.instructions)
    g_code = compiled.vm_program.code_named("g")
    assert any(ins[0] == isa.CALLL for ins in g_code.instructions)
    assert not any(ins[0] == isa.TAILL for ins in g_code.instructions)


def test_direct_call_requires_arity_match():
    with pytest.raises(CompileError, match="argument"):
        compile_bare("(define (f a) a) (f (%raw 1) (%raw 2))")


def test_mutated_global_not_directly_called():
    compiled = compile_bare(
        "(define (f a) a) (set! f (%raw 0)) (define (g) (f (%raw 1)))"
    )
    g_code = compiled.vm_program.code_named("g")
    assert any(ins[0] in (isa.CALL, isa.TAILCALL) for ins in g_code.instructions)


def test_closure_capture_emits_closure_instruction():
    compiled = compile_bare("(define (f a) (lambda () a))")
    f_code = compiled.vm_program.code_named("f")
    closures = [ins for ins in f_code.instructions if ins[0] == isa.CLOSURE]
    assert len(closures) == 1
    assert closures[0][3] == [0]  # captures register of a


def test_mutual_fix_closures_are_patched():
    source = """
    (define (outer seed)
      (letrec ((even? (lambda (n) (if (%eq n (%raw 0)) seed (odd? (%sub n (%raw 1))))))
               (odd? (lambda (n) (if (%eq n (%raw 0)) (%raw 0) (even? (%sub n (%raw 1)))))))
        (even? seed)))
    (outer (%raw 6))
    """
    result = run_bare(source)
    assert result.value == 6


def test_global_indexes_are_stable():
    compiled = compile_bare("(define a (%raw 1)) (define b (%raw 2)) a")
    names = compiled.vm_program.global_names
    assert names.index("a") < names.index("b")


def test_static_instruction_count_api():
    compiled = compile_bare("(define (f a) (%add a a)) (f (%raw 1))")
    assert compiled.static_instruction_count("f") == 2
    assert compiled.static_instruction_count() > 2
    with pytest.raises(KeyError):
        compiled.static_instruction_count("nope")


# ----------------------------------------------------------------------
# emit-time hints (consumed by the compiled engine)
# ----------------------------------------------------------------------

from repro.absint.lattice import from_tags  # noqa: E402
from repro.backend.peephole import (  # noqa: E402
    compute_emit_hints,
    fuse_superinstructions,
)


def test_hint_div_by_known_nonzero_constant():
    code = make_code(
        [
            [isa.LDC, 1, 7],
            [isa.DIV, 2, 0, 1],
            [isa.RET, 2],
        ]
    )
    hints = compute_emit_hints(code)
    assert hints["div_nonzero"] == {1}
    assert code.meta["emit_hints"]["div_nonzero"] == {1}


def test_hint_div_by_unknown_register_is_not_marked():
    code = make_code(
        [
            [isa.DIV, 2, 0, 1],  # divisor r1 is a parameter: unknown
            [isa.RET, 2],
        ],
        nparams=2,
    )
    hints = compute_emit_hints(code)
    assert hints["div_nonzero"] == frozenset()


def test_hint_aligned_load_from_fresh_allocation():
    code = make_code(
        [
            [isa.ALLOCI, 1, 2, 0],   # tag 0: r1 is 8-aligned
            [isa.LD, 2, 1, 8],       # (0 + 8) % 8 == 0: aligned
            [isa.LD, 3, 1, 12],      # (0 + 12) % 8 != 0: not aligned
            [isa.ST, 1, 16, 2],      # aligned store
            [isa.RET, 2],
        ]
    )
    hints = compute_emit_hints(code)
    assert hints["aligned"] == {1, 3}


def test_hint_tag_arithmetic_shifts_alignment():
    code = make_code(
        [
            [isa.ALLOCI, 1, 2, 1],   # tag 1 pointer
            [isa.ADDI, 1, 1, 7],     # (1 + 7) & 7 == 0: now aligned
            [isa.LD, 2, 1, 8],
            [isa.RET, 2],
        ]
    )
    hints = compute_emit_hints(code)
    assert hints["aligned"] == {2}


def test_hint_facts_die_at_branch_targets():
    # pc 2 is a branch target: the ALLOCI fact must not survive into it
    code = make_code(
        [
            [isa.ALLOCI, 1, 2, 0],
            [isa.JT, 3, 2],
            [isa.LD, 2, 1, 8],       # leader: r1 unknown here
            [isa.RET, 2],
        ],
        nparams=4,
    )
    hints = compute_emit_hints(code)
    assert hints["aligned"] == frozenset()


def test_hint_entry_facts_seed_the_entry_block():
    code = make_code(
        [
            [isa.LD, 2, 0, 8],
            [isa.RET, 2],
        ],
        nparams=1,
    )
    hints = compute_emit_hints(code, {0: from_tags({0})})
    assert hints["aligned"] == {0}
    # without entry facts the same load is unknown
    assert compute_emit_hints(make_code(code.instructions, nparams=1))[
        "aligned"
    ] == frozenset()


def test_hint_entry_facts_ignored_when_pc0_is_a_loop_head():
    # a back edge to pc 0 would carry loop state into the "entry" facts
    code = make_code(
        [
            [isa.LD, 2, 0, 8],
            [isa.JT, 2, 0],
            [isa.RET, 2],
        ],
        nparams=1,
    )
    hints = compute_emit_hints(code, {0: from_tags({0})})
    assert hints["aligned"] == frozenset()


def test_hint_pcs_key_base_instructions_only():
    code = make_code(
        [
            [isa.ALLOCI, 1, 2, 0],
            [isa.LDC, 3, 7],
            [isa.DIV, 2, 0, 3],
            [isa.RET, 2],
        ]
    )
    fused = fuse_superinstructions(code)
    hints = compute_emit_hints(code)
    for pc in hints["div_nonzero"] | hints["aligned"]:
        assert code.instructions[pc][0] < isa.FIRST_FUSED
    if fused:  # whatever got fused is transfer-only, never a hint key
        assert any(ins[0] >= isa.FIRST_FUSED for ins in code.instructions)
