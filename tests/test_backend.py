"""Unit tests for the backend passes: assignment conversion, peephole,
and code generation details."""

import pytest

from repro.backend.assignconv import convert_assignments
from repro.backend.peephole import peephole
from repro.errors import CompileError
from repro.ir import (
    Call,
    Const,
    GlobalSet,
    Lambda,
    Let,
    LocalSet,
    LocalVar,
    Prim,
    Program,
    Seq,
    Var,
    iter_tree,
)
from repro.vm import isa


# ----------------------------------------------------------------------
# assignment conversion
# ----------------------------------------------------------------------


def test_unassigned_code_untouched():
    x = LocalVar("x")
    node = Lambda([x], None, Var(x), "f")
    converted = convert_assignments(node)
    assert isinstance(converted.body, Var)


def test_assigned_param_becomes_cell():
    x = LocalVar("x")
    x.assigned = True
    node = Lambda([x], None, Seq([LocalSet(x, Const(1)), Var(x)]), "f")
    converted = convert_assignments(node)
    # body: Let((box, make-cell(x))) with stores/loads inside
    assert isinstance(converted.body, Let)
    ops = [n.op for n in iter_tree(converted.body) if isinstance(n, Prim)]
    assert "%alloc" in ops
    assert ops.count("%store") >= 2  # init + set!
    assert "%load" in ops  # the read
    sets = [n for n in iter_tree(converted) if isinstance(n, LocalSet)]
    assert not sets


def test_assigned_let_binding_becomes_cell():
    x = LocalVar("x")
    x.assigned = True
    node = Let([(x, Const(5))], Seq([LocalSet(x, Const(6)), Var(x)]))
    converted = convert_assignments(node)
    sets = [n for n in iter_tree(converted) if isinstance(n, LocalSet)]
    assert not sets
    allocs = [n for n in iter_tree(converted) if isinstance(n, Prim) and n.op == "%alloc"]
    assert len(allocs) == 1
    # cells use the compiler-owned tag 7
    assert allocs[0].args[1].value == 7


def test_assigned_rest_param_boxed():
    r = LocalVar("r")
    r.assigned = True
    node = Lambda([], r, Seq([LocalSet(r, Const(0)), Var(r)]), "f")
    converted = convert_assignments(node)
    assert isinstance(converted.body, Let)


# ----------------------------------------------------------------------
# peephole
# ----------------------------------------------------------------------


def make_code(instructions, nparams=0):
    code = isa.CodeObject("t", nparams, False, 0)
    code.instructions = [list(ins) for ins in instructions]
    code.nregs = 32
    return code


def test_mov_fusion():
    code = make_code(
        [
            [isa.ADD, 5, 0, 1],
            [isa.MOV, 2, 5],
            [isa.RET, 2],
        ]
    )
    peephole(code)
    assert code.instructions == [[isa.ADD, 2, 0, 1], [isa.RET, 2]]


def test_mov_not_fused_when_temp_reused():
    code = make_code(
        [
            [isa.ADD, 5, 0, 1],
            [isa.MOV, 2, 5],
            [isa.ADD, 3, 5, 2],
            [isa.RET, 3],
        ]
    )
    peephole(code)
    assert code.instructions[0] == [isa.ADD, 5, 0, 1]  # untouched


def test_mov_not_fused_into_branch_target():
    # instruction 1 is a jump target: the MOV must survive
    code = make_code(
        [
            [isa.ADD, 5, 0, 1],
            [isa.MOV, 2, 5],
            [isa.JMP, 1],
        ]
    )
    peephole(code)
    assert any(ins[0] == isa.MOV for ins in code.instructions)


def test_trivial_jump_removed_and_targets_remapped():
    code = make_code(
        [
            [isa.JMP, 1],       # trivial: falls through anyway
            [isa.LDC, 0, 1],
            [isa.JMP, 1],       # backward jump, must be remapped to 0
        ]
    )
    peephole(code)
    assert code.instructions[0] == [isa.LDC, 0, 1]
    assert code.instructions[1] == [isa.JMP, 0]


# ----------------------------------------------------------------------
# code generation details (through the full pipeline, no prelude)
# ----------------------------------------------------------------------


def compile_bare(source, optimize=False):
    """Compile machine-primitive-only source without any prelude."""
    from repro import CompileOptions, OptimizerOptions, compile_source

    options = CompileOptions(
        optimizer=OptimizerOptions() if optimize else OptimizerOptions.none(),
        prelude="none",
    )
    options.optimizer.prune_globals = False
    return compile_source(source, options)


def run_bare(source, **kwargs):
    from repro.vm import Machine

    compiled = compile_bare(source)
    return Machine(compiled.vm_program, **kwargs).run()


def test_bare_arithmetic():
    assert run_bare("(%add (%raw 2) (%raw 3))").value == 5


def test_bare_if_and_compare_fusion():
    compiled = compile_bare("(define (f a b) (if (%lt a b) (%raw 1) (%raw 2)))")
    code = compiled.vm_program.code_named("f")
    assert any(ins[0] == isa.JGE for ins in code.instructions)


def test_eq_const_test_uses_jnei():
    compiled = compile_bare("(define (f a) (if (%eq a (%raw 5)) (%raw 1) (%raw 2)))")
    code = compiled.vm_program.code_named("f")
    assert any(ins[0] == isa.JNEI for ins in code.instructions)


def test_tail_call_in_tail_position_only():
    compiled = compile_bare(
        "(define (f a) (f a)) (define (g a) (%add (g a) (%raw 1)))"
    )
    f_code = compiled.vm_program.code_named("f")
    assert any(ins[0] == isa.TAILL for ins in f_code.instructions)
    g_code = compiled.vm_program.code_named("g")
    assert any(ins[0] == isa.CALLL for ins in g_code.instructions)
    assert not any(ins[0] == isa.TAILL for ins in g_code.instructions)


def test_direct_call_requires_arity_match():
    with pytest.raises(CompileError, match="argument"):
        compile_bare("(define (f a) a) (f (%raw 1) (%raw 2))")


def test_mutated_global_not_directly_called():
    compiled = compile_bare(
        "(define (f a) a) (set! f (%raw 0)) (define (g) (f (%raw 1)))"
    )
    g_code = compiled.vm_program.code_named("g")
    assert any(ins[0] in (isa.CALL, isa.TAILCALL) for ins in g_code.instructions)


def test_closure_capture_emits_closure_instruction():
    compiled = compile_bare("(define (f a) (lambda () a))")
    f_code = compiled.vm_program.code_named("f")
    closures = [ins for ins in f_code.instructions if ins[0] == isa.CLOSURE]
    assert len(closures) == 1
    assert closures[0][3] == [0]  # captures register of a


def test_mutual_fix_closures_are_patched():
    source = """
    (define (outer seed)
      (letrec ((even? (lambda (n) (if (%eq n (%raw 0)) seed (odd? (%sub n (%raw 1))))))
               (odd? (lambda (n) (if (%eq n (%raw 0)) (%raw 0) (even? (%sub n (%raw 1)))))))
        (even? seed)))
    (outer (%raw 6))
    """
    result = run_bare(source)
    assert result.value == 6


def test_global_indexes_are_stable():
    compiled = compile_bare("(define a (%raw 1)) (define b (%raw 2)) a")
    names = compiled.vm_program.global_names
    assert names.index("a") < names.index("b")


def test_static_instruction_count_api():
    compiled = compile_bare("(define (f a) (%add a a)) (f (%raw 1))")
    assert compiled.static_instruction_count("f") == 2
    assert compiled.static_instruction_count() > 2
    with pytest.raises(KeyError):
        compiled.static_instruction_count("nope")
