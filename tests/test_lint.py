"""The `repro lint` diagnostics subsystem.

Seeded fixtures are deliberately *flow-dependent*: trivially-constant
dead code is removed by the syntactic optimizer before lint sees it, so
each fixture needs the tag/range analysis to be decidable at all — which
is exactly the subsystem under test.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    LintOptions,
    all_rules,
    lint_source,
    render_json,
    render_text,
)

# ----------------------------------------------------------------------
# seeded fixtures (acceptance criteria)
# ----------------------------------------------------------------------

#: inner (fixnum? (+ x 1)) is always true inside the fixnum? guard, so
#: the 'impossible arm is unreachable — but only tag propagation through
#: %add can see it (the CSE check key differs).
UNREACHABLE_FIXTURE = """
(define (check x)
  (if (fixnum? x)
      (if (fixnum? (+ x 1)) 'ok 'impossible)
      'not-a-number))
(display (check 5))
"""

#: (pair? (+ x 1)) in value position is always false for the same
#: reason: (+ x 1) provably carries the fixnum tag.
ALWAYS_FALSE_FIXTURE = """
(define (classify x)
  (if (fixnum? x)
      (pair? (+ x 1))
      #f))
(display (classify 5))
"""


def rules_hit(source, options=None):
    return {d.rule for d in lint_source(source, options).diagnostics}


def test_seeded_unreachable_branch_flagged():
    report = lint_source(UNREACHABLE_FIXTURE)
    hits = [d for d in report.diagnostics if d.rule == "unreachable-branch"]
    assert len(hits) == 1
    assert hits[0].form == "check"
    assert hits[0].severity == "warning"
    assert "unreachable" in hits[0].message


def test_seeded_always_false_predicate_flagged():
    report = lint_source(ALWAYS_FALSE_FIXTURE)
    hits = [d for d in report.diagnostics if d.rule == "constant-predicate"]
    assert len(hits) == 1
    assert hits[0].form == "classify"
    assert "false" in hits[0].message


def test_clean_program_is_clean():
    report = lint_source("(display (+ 1 2))")
    assert report.diagnostics == []
    assert report.exit_code() == 0
    assert report.exit_code(werror=True) == 0


# ----------------------------------------------------------------------
# the other rules
# ----------------------------------------------------------------------


def test_guaranteed_failure_at_call_site():
    source = """
    (define (bad x) (if (fixnum? x) (car (+ x 1)) (car x)))
    (display (bad 5))
    """
    report = lint_source(source)
    hits = [d for d in report.diagnostics if d.rule == "guaranteed-failure"]
    assert hits, report.diagnostics
    # The failing site is the inlined call, a top-level expression.
    assert any(not d.detail.get("lambda") for d in hits)


def test_intentional_error_helpers_not_flagged():
    source = """
    (define (my-error msg) (begin (display msg) (%fail (%raw 3))))
    (display (if (> 1 2) (my-error "no") 'fine))
    """
    assert "guaranteed-failure" not in rules_hit(source)


def test_shadowed_define_prelude_and_duplicate():
    source = """
    (define (car x) x)
    (define twice 1)
    (define twice 2)
    (display twice)
    """
    report = lint_source(source)
    shadowed = [d for d in report.diagnostics if d.rule == "shadowed-define"]
    assert {d.detail["shadows"] for d in shadowed} == {"prelude", "earlier define"}


def test_unused_define():
    report = lint_source("(define helper 42) (display 1)")
    assert any(d.rule == "unused-define" for d in report.diagnostics)
    # referencing it clears the warning
    report2 = lint_source("(define helper 42) (display helper)")
    assert not any(d.rule == "unused-define" for d in report2.diagnostics)


def test_double_register_pointer_rep():
    report = lint_source("(%register-pointer-rep (%raw 1)) (display 1)")
    hits = [d for d in report.diagnostics if d.rule == "double-register"]
    assert hits and hits[0].severity == "error"
    assert report.exit_code() == 1  # errors fail even without --Werror


def test_fixnum_overflow_literal():
    report = lint_source("(display 2305843009213693952)")
    assert "fixnum-overflow" in {d.rule for d in report.diagnostics}
    assert "expand-error" in {d.rule for d in report.diagnostics}
    assert report.exit_code() == 1


def test_prelude_lints_clean():
    report = lint_source("", LintOptions(prelude_only=True))
    assert report.diagnostics == []
    # only flow rules run against the prelude
    assert all(r in {"unreachable-branch", "constant-predicate",
                     "guaranteed-failure", "wrong-arity-call",
                     "never-returning-call"} for r in report.rules_run)


# ----------------------------------------------------------------------
# summary-driven rules (interprocedural)
# ----------------------------------------------------------------------


def test_wrong_arity_call():
    report = lint_source("(define (f x y) (+ x y)) (f 1)")
    hits = [d for d in report.diagnostics if d.rule == "wrong-arity-call"]
    assert len(hits) == 1
    assert hits[0].severity == "error"
    assert hits[0].detail == {"callee": "f", "got": 1, "want": 2}
    assert report.exit_code() == 1


def test_wrong_arity_call_clean_when_matching():
    assert "wrong-arity-call" not in rules_hit(
        "(define (f x y) (+ x y)) (display (f 1 2))"
    )


def test_never_returning_call():
    # The callee survives inlining (self-recursive) and every path
    # through it either recurses or fails a vector check on a fixnum —
    # only the interprocedural summary can see that.
    source = """
    (define (walk v)
      (if (null? v) (vector-ref 17 0) (walk (cdr v))))
    (walk '(1 2 3))
    """
    report = lint_source(source)
    hits = [d for d in report.diagnostics if d.rule == "never-returning-call"]
    assert len(hits) == 1
    assert hits[0].detail["callee"] == "walk"
    # the self-recursive call inside walk itself is not double-reported
    assert hits[0].form != "walk"


def test_never_returning_skips_intentional_error_helpers():
    source = """
    (define (boom msg) (begin (display msg) (%fail (%raw 3))))
    (define (walk v) (if (null? v) (boom "empty") (walk (cdr v))))
    (display (walk '(1 2)))
    """
    assert "never-returning-call" not in rules_hit(source)


def test_dead_record_field():
    source = """
    (define-record-type point (make-point x y) point?
      (x point-x) (y point-y))
    (display (point-x (make-point 1 2)))
    """
    report = lint_source(source)
    hits = [d for d in report.diagnostics if d.rule == "dead-record-field"]
    assert len(hits) == 1
    assert hits[0].detail["field"] == "y"
    assert hits[0].detail["type"] == "point"
    assert hits[0].detail["accessor"] == "point-y"


def test_dead_record_field_clean_when_read():
    source = """
    (define-record-type point (make-point x y) point?
      (x point-x) (y point-y))
    (display (+ (point-x (make-point 1 2)) (point-y (make-point 3 4))))
    """
    assert "dead-record-field" not in rules_hit(source)


# ----------------------------------------------------------------------
# suppression
# ----------------------------------------------------------------------


def test_per_rule_suppression():
    options = LintOptions(disabled=frozenset({"unreachable-branch"}))
    report = lint_source(UNREACHABLE_FIXTURE, options)
    assert "unreachable-branch" not in {d.rule for d in report.diagnostics}
    assert "unreachable-branch" not in report.rules_run


def test_suppressing_everything_silences_the_report():
    options = LintOptions(disabled=frozenset(r.id for r in all_rules()))
    report = lint_source(UNREACHABLE_FIXTURE, options)
    assert report.diagnostics == []


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------


def test_text_reporter_mentions_rule_and_form():
    text = render_text(lint_source(UNREACHABLE_FIXTURE), "fixture.scm")
    assert "fixture.scm:check:" in text
    assert "[unreachable-branch]" in text
    assert "warning(s)" in text


def test_json_reporter_schema():
    payload = json.loads(render_json(lint_source(UNREACHABLE_FIXTURE), "f.scm"))
    assert payload["schema"] == 1
    assert payload["file"] == "f.scm"
    assert payload["summary"]["warnings"] >= 1
    assert payload["summary"]["errors"] == 0
    diag = next(
        d for d in payload["diagnostics"] if d["rule"] == "unreachable-branch"
    )
    assert diag["severity"] == "warning"
    assert diag["form"] == "check"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_exit_zero_on_warnings_without_werror(capsys):
    code = cli_main(["lint", "-e", UNREACHABLE_FIXTURE])
    out = capsys.readouterr().out
    assert code == 0
    assert "[unreachable-branch]" in out


def test_cli_werror_exits_nonzero(capsys):
    code = cli_main(["lint", "--Werror", "-e", UNREACHABLE_FIXTURE])
    capsys.readouterr()
    assert code == 4  # EXIT_LINT: findings promoted by --Werror


def test_cli_disable_restores_zero_exit(capsys):
    code = cli_main(
        [
            "lint",
            "--Werror",
            "--disable",
            "unreachable-branch",
            "-e",
            UNREACHABLE_FIXTURE,
        ]
    )
    capsys.readouterr()
    assert code == 0


def test_cli_json_output(capsys):
    code = cli_main(["lint", "--json", "-e", "(display (+ 1 2))"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["diagnostics"] == []


def test_cli_list_rules(capsys):
    code = cli_main(["lint", "--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule in all_rules():
        assert rule.id in out


def test_cli_lint_file(tmp_path, capsys):
    path = tmp_path / "prog.scm"
    path.write_text(UNREACHABLE_FIXTURE)
    code = cli_main(["lint", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert str(path) in out


# ----------------------------------------------------------------------
# api integration
# ----------------------------------------------------------------------


def test_compile_source_exposes_diagnostics():
    from repro.api import compile_source

    compiled = compile_source(UNREACHABLE_FIXTURE, diagnostics=True)
    assert any(d.rule == "unreachable-branch" for d in compiled.diagnostics)
    # and the program still runs
    assert compiled.run().output == "ok"


def test_compile_source_diagnostics_off_by_default():
    from repro.api import compile_source

    compiled = compile_source("(display 1)")
    assert compiled.diagnostics == []
