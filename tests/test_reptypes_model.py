"""The Python mirror of the representation scheme must agree with what
the Scheme library actually computes at run time."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reptypes import model

from .conftest import run_unopt


def word_of(source):
    return run_unopt(source).value


# ----------------------------------------------------------------------
# pure model properties
# ----------------------------------------------------------------------


def test_fixnum_round_trip():
    for value in (0, 1, -1, 41, -(2**59), 2**59):
        assert model.fixnum_value(model.fixnum_word(value)) == value


def test_fixnum_range_enforced():
    with pytest.raises(ValueError):
        model.fixnum_word(2**60)


@given(st.integers(min_value=-(2**59), max_value=2**59))
@settings(max_examples=50)
def test_fixnum_words_preserve_order(value):
    from repro.prims import signed

    assert signed(model.fixnum_word(value)) == value * 8


def test_immediate_constants():
    assert model.FALSE_WORD == 6
    assert model.TRUE_WORD == 14
    assert model.NIL_WORD == 22
    assert model.UNSPECIFIED_WORD == 30
    assert model.EOF_WORD == 38
    assert model.char_word(ord("a")) == (97 << 8) | 46


def test_immediate_kind_and_payload():
    word = model.char_word(65)
    assert model.immediate_kind(word) == model.IMM_KIND_CHAR
    assert model.immediate_payload(word) == 65


def test_field_displacements():
    assert model.field_displacement(model.TAG_PAIR, 0) == 7
    assert model.field_displacement(model.TAG_PAIR, 1) == 15
    assert model.field_displacement(model.TAG_VECTOR, 0) == 6
    assert model.field_displacement(model.TAG_STRING, 0) == 5
    assert model.field_displacement(model.TAG_RECORD, 0) == 3


def test_classify_word():
    assert model.classify_word(model.fixnum_word(5)) == "fixnum"
    assert model.classify_word(model.TRUE_WORD) == "boolean"
    assert model.classify_word(model.NIL_WORD) == "empty-list"
    assert model.classify_word(model.char_word(65)) == "char"
    assert model.classify_word(0x101) == "pair"
    assert model.classify_word(0x107) == "procedure"


def test_models_classify_instances():
    assert model.FIXNUM.is_instance_word(model.fixnum_word(3))
    assert model.CHAR.is_instance_word(model.char_word(3))
    assert not model.CHAR.is_instance_word(model.TRUE_WORD)
    assert model.PAIR.is_instance_word(0x101)


# ----------------------------------------------------------------------
# agreement with the live library
# ----------------------------------------------------------------------


def test_library_agrees_on_immediates():
    assert word_of("#t") == model.TRUE_WORD
    assert word_of("#f") == model.FALSE_WORD
    assert word_of("'()") == model.NIL_WORD
    assert word_of("(if #f #f)") == model.UNSPECIFIED_WORD
    assert word_of("#\\A") == model.char_word(65)


def test_library_agrees_on_fixnums():
    assert word_of("41") == model.fixnum_word(41)
    assert word_of("-3") == model.fixnum_word(-3)


def test_library_agrees_on_tags():
    assert word_of("(cons 1 2)") & 7 == model.TAG_PAIR
    assert word_of("(make-vector 1 0)") & 7 == model.TAG_VECTOR
    assert word_of('"s"') & 7 == model.TAG_STRING
    assert word_of("'sym") & 7 == model.TAG_SYMBOL
    assert word_of("pair-rep") & 7 == model.TAG_RECORD
    assert word_of("car") & 7 == model.TAG_CLOSURE


def test_library_agrees_on_pair_layout():
    result = run_unopt("(cons 41 #t)")
    word = result.value
    heap = result.machine.heap
    assert heap.load(word + model.PAIR_CAR_DISP) == model.fixnum_word(41)
    assert heap.load(word + model.PAIR_CDR_DISP) == model.TRUE_WORD
