"""A test suite written in Scheme, executed inside the VM.

One compile covers dozens of semantic checks; the program reports each
failing check by name through `display` and signals at the end, so a
failure pinpoints the broken library behaviour.  Runs under both the
unoptimized and fully optimized configurations.
"""

import pytest

from repro import decode, run_source

from .conftest import OPT, UNOPT

SUITE = r"""
(define failures '())
(define checks 0)

(define (check name ok)
  (set! checks (+ checks 1))
  (unless ok
    (set! failures (cons name failures))
    (display "FAIL: ") (display name) (newline)))

;; --- arithmetic tower ---------------------------------------------------
(check 'add (= (+ 2 3) 5))
(check 'sub-neg (= (- 3 10) -7))
(check 'mul (= (* -4 6) -24))
(check 'quotient (= (quotient 17 5) 3))
(check 'quotient-neg (= (quotient -17 5) -3))
(check 'remainder (= (remainder -17 5) -2))
(check 'modulo (= (modulo -17 5) 3))
(check 'expt (= (expt 2 16) 65536))
(check 'gcd (= (gcd 36 60) 12))
(check 'abs (= (abs -9) 9))
(check 'min-max (= (+ (min 1 2) (max 1 2)) 3))
(check 'ordering (< -3 -2))
(check 'big (= (* 30000 30000) 900000000))

;; --- booleans -------------------------------------------------------------
(check 'not-of-nil (eq? (not '()) #f))   ; () is true in Scheme
(check 'truthiness (if 0 #t #f))          ; 0 is true too
(check 'bool-pred (boolean? (= 1 1)))

;; --- pairs and lists --------------------------------------------------------
(check 'cons-car (= (car (cons 1 2)) 1))
(check 'list-length (= (length '(a b c)) 3))
(check 'append (equal? (append '(1) '(2 3)) '(1 2 3)))
(check 'reverse (equal? (reverse '(1 2 3)) '(3 2 1)))
(check 'nested-equal (equal? '((1 2) (3)) (list (list 1 2) (list 3))))
(check 'assq (equal? (assq 'b '((a . 1) (b . 2))) '(b . 2)))
(check 'map2 (equal? (map + '(1 2) '(10 20)) '(11 22)))
(check 'filter (equal? (filter odd? '(1 2 3 4 5)) '(1 3 5)))
(check 'fold (= (fold-left + 0 '(1 2 3 4)) 10))
(check 'sort (equal? (sort '(3 1 2) <) '(1 2 3)))
(check 'member (equal? (member "b" '("a" "b")) '("b")))
(check 'list-mutation
  (let ((p (list 1 2)))
    (set-car! p 99)
    (= (car p) 99)))

;; --- strings and chars -------------------------------------------------------
(check 'string-length (= (string-length "hello") 5))
(check 'string-index (char=? (string-ref "abc" 2) #\c))
(check 'string-eq (string=? (string-append "ab" "cd") "abcd"))
(check 'substring (string=? (substring "abcdef" 2 4) "cd"))
(check 'string-lt (string<? "abc" "abd"))
(check 'num->str (string=? (number->string -105) "-105"))
(check 'str->num (= (string->number "360") 360))
(check 'char-arith (char=? (integer->char (+ 1 (char->integer #\a))) #\b))
(check 'string-list-roundtrip
  (string=? (list->string (string->list "round")) "round"))

;; --- vectors -------------------------------------------------------------------
(check 'vector-basic
  (let ((v (make-vector 4 0)))
    (vector-set! v 2 'x)
    (eq? (vector-ref v 2) 'x)))
(check 'vector-list (equal? (vector->list (vector 1 2)) '(1 2)))
(check 'vector-map (equal? (vector-map 1+ (vector 1 2)) (vector 2 3)))

;; --- closures and control --------------------------------------------------------
(check 'closure
  (let ((add (lambda (n) (lambda (x) (+ x n)))))
    (= ((add 5) 10) 15)))
(check 'counter
  (let ((n 0))
    (define (bump) (set! n (+ n 1)) n)
    (bump) (bump)
    (= (bump) 3)))
(check 'named-let
  (= (let loop ((i 0) (acc 0)) (if (= i 10) acc (loop (+ i 1) (+ acc i)))) 45))
(check 'varargs (= ((lambda args (length args)) 1 2 3 4 5) 5))
(check 'apply (= (apply max 1 '(9)) 9))
(check 'deep-tail
  (eq? (let loop ((n 30000)) (if (= n 0) 'ok (loop (- n 1)))) 'ok))
(check 'mutual
  (letrec ((even2? (lambda (n) (if (= n 0) #t (odd2? (- n 1)))))
           (odd2? (lambda (n) (if (= n 0) #f (even2? (- n 1))))))
    (even2? 100)))

;; --- symbols and reflection ----------------------------------------------------------
(check 'symbol-roundtrip (eq? (string->symbol "zig") 'zig))
(check 'rep-of-pair (eq? (rep-of (cons 1 2)) pair-rep))
(check 'rep-accessor-is-car (eq? (rep-accessor pair-rep 0) car))
(check 'records
  (let ((r (make-record-rep 'cell '(v))))
    (= ((rep-accessor r 0) ((rep-constructor r) 42)) 42)))

;; --- macros ---------------------------------------------------------------------------
(define-syntax my-swap!
  (syntax-rules ()
    ((_ a b) (let ((tmp a)) (set! a b) (set! b tmp)))))
(check 'macro-swap
  (let ((p 1) (q 2))
    (my-swap! p q)
    (if (= p 2) (= q 1) #f)))

(define-syntax my-list-of
  (syntax-rules ()
    ((_ e ...) (list e ...))))
(check 'macro-ellipsis (equal? (my-list-of 1 2 3) '(1 2 3)))

;; --- verdict ---------------------------------------------------------------------------
(display "checks run: ") (display checks) (newline)
(if (null? failures)
    'all-passed
    (begin (display "failures: ") (display failures) (newline)
           (error "scheme suite failed")))
"""


@pytest.mark.parametrize("options", [UNOPT, OPT], ids=["unopt", "opt"])
def test_scheme_suite(options):
    result = run_source(SUITE, options, heap_words=1 << 18)
    assert decode(result).name == "all-passed"
    assert "FAIL" not in result.output
