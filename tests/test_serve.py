"""The multi-tenant execution service: scheduling, quotas, recovery.

Everything here drives the real service on a real event loop via
``asyncio.run`` — no scheduler mocks — but with small slices and small
programs so tier-1 stays fast.  Compiled programs are shared across
tests through one module-level compile cache (the service's own
content-keyed cache, pre-seeded), since whole-program compilation
dominates and is covered elsewhere.
"""

import asyncio
import json

import pytest

from repro.serve import (
    BreakerPolicy,
    ExecutionService,
    JobCompleted,
    JobFailed,
    JobRejected,
    ServeConfig,
    ServeServer,
    ServiceClient,
    ServiceOverloaded,
    TenantQuota,
)
from repro.vm.faultinject import FaultSchedule

GOOD = "(+ 1 2)"  # completes; value "3"
#: long enough that budget/deadline/drain tests always kill it first
LOOP = "(let loop ((i 0)) (if (= i 100000) i (loop (+ i 1))))"
ALLOC = (
    "(let loop ((i 0) (acc '())) "
    "(if (= i 60) (length acc) (loop (+ i 1) (cons i acc))))"
)  # allocates on every iteration; value "60"
HOSTILE = "(car 0)"  # always traps in safe mode

#: one compile of each source for the whole module; every service below
#: gets this dict as its content-keyed compile cache
_SHARED_CACHE: dict = {}


def _config(**overrides) -> ServeConfig:
    defaults = dict(
        pool_size=2,
        heap_words=1 << 16,
        slice_steps=300,
        queue_limit=64,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _service(config: ServeConfig | None = None) -> ExecutionService:
    service = ExecutionService(config or _config())
    service._compile_cache = _SHARED_CACHE
    return service


# ----------------------------------------------------------------------
# basic completion and preemption
# ----------------------------------------------------------------------


def test_job_completes_with_typed_response():
    async def main():
        async with _service() as service:
            client = ServiceClient(service)
            response = await client.run(GOOD, tenant="alice")
            assert isinstance(response, JobCompleted)
            assert response.ok and response.status == "ok"
            assert response.value == "3"
            # the program is far longer than one slice: it was preempted
            # and resumed, transparently
            assert response.slices > 1
            assert response.steps > 0
            assert response.attempts == 1
            assert response.engine
            payload = response.to_json()
            assert payload["status"] == "ok"
            assert payload["value"] == "3"
            json.dumps(payload)

    asyncio.run(main())


def test_concurrent_jobs_interleave_round_robin():
    async def main():
        async with _service() as service:
            client = ServiceClient(service)
            responses = await client.run_many(
                [(GOOD, {"tenant": "a"}), (GOOD, {"tenant": "b"})]
            )
            assert all(r.ok and r.value == "3" for r in responses)
            # both jobs took slices before either finished: the first
            # two slice events belong to two different jobs
            slice_jobs = [e["job"] for e in service.events.events("slice")]
            assert len(set(slice_jobs[:2])) == 2, slice_jobs[:8]

    asyncio.run(main())


# ----------------------------------------------------------------------
# per-job budgets and deadlines
# ----------------------------------------------------------------------


def test_per_job_fuel_cap():
    async def main():
        async with _service() as service:
            client = ServiceClient(service)
            response = await client.run(LOOP, tenant="t", max_steps=1000)
            assert isinstance(response, JobFailed)
            assert response.kind == "steps"
            # exact across slices: the instruction that would exceed the
            # cap is charged but not executed (steps == cap + 1)
            assert response.steps == 1001
            assert not response.requeueable

    asyncio.run(main())


def test_per_job_alloc_cap_carries_trap_payload():
    async def main():
        async with _service() as service:
            client = ServiceClient(service)
            response = await client.run(ALLOC, tenant="t",
                                        max_alloc_words=100)
            assert isinstance(response, JobFailed)
            assert response.kind == "alloc"
            assert response.trap is not None
            assert response.trap["kind"] == "alloc"
            assert response.trap["resumable"] is True
            json.dumps(response.trap)

    asyncio.run(main())


def test_job_deadline_enforced_across_slices():
    async def main():
        async with _service() as service:
            client = ServiceClient(service)
            # expires mid-run, at a slice boundary
            mid = await client.run(LOOP, tenant="t", deadline_seconds=0.02)
            assert isinstance(mid, JobFailed) and mid.kind == "deadline"
            assert mid.steps > 0
            # already expired when its turn comes: killed in the queue
            queued = await client.run(LOOP, tenant="t", deadline_seconds=0.0)
            assert isinstance(queued, JobFailed) and queued.kind == "deadline"

    asyncio.run(main())


# ----------------------------------------------------------------------
# admission control: quotas, overload shedding, tenant caps
# ----------------------------------------------------------------------


def test_in_flight_quota_rejects_at_admission():
    config = _config(quota=TenantQuota(max_in_flight=1))

    async def main():
        async with _service(config) as service:
            first = service.submit(GOOD, tenant="busy")
            second = service.submit(GOOD, tenant="busy")
            assert second.done()  # rejected synchronously
            rejection = second.result()
            assert isinstance(rejection, JobRejected)
            assert rejection.kind == "quota"
            # an unrelated tenant is unaffected
            other = await service.submit(GOOD, tenant="other")
            assert other.ok
            assert (await first).ok

    asyncio.run(main())


def test_overload_is_shed_with_typed_response():
    config = _config(pool_size=1, queue_limit=1)

    async def main():
        async with _service(config) as service:
            first = service.submit(GOOD, tenant="t")
            shed = service.submit(GOOD, tenant="t")
            assert shed.done()
            response = shed.result()
            assert isinstance(response, ServiceOverloaded)
            assert response.status == "rejected"
            assert response.kind == "overloaded"
            assert response.requeueable
            assert response.queue_depth == 1
            assert service.stats["shed"] == 1
            assert (await first).ok

    asyncio.run(main())


def test_tenant_fuel_quota_binds_across_jobs():
    config = _config(
        tenant_quotas={"greedy": TenantQuota(max_in_flight=8, max_fuel=2000)}
    )

    async def main():
        async with _service(config) as service:
            client = ServiceClient(service)
            burned = await client.run(LOOP, tenant="greedy")
            assert isinstance(burned, JobFailed)
            assert burned.kind == "tenant-fuel"
            # the cap is cumulative: the next job is denied at admission
            denied = await client.run(GOOD, tenant="greedy")
            assert isinstance(denied, JobRejected)
            assert denied.kind == "tenant-fuel"
            # everyone else still runs
            assert (await client.run(GOOD, tenant="frugal")).ok

    asyncio.run(main())


def test_tenant_alloc_quota_binds_across_jobs():
    config = _config(
        tenant_quotas={
            "hoarder": TenantQuota(max_in_flight=8, max_alloc_words=1000)
        }
    )

    async def main():
        async with _service(config) as service:
            client = ServiceClient(service)
            burst = await client.run(ALLOC, tenant="hoarder")
            assert isinstance(burst, JobFailed)
            assert burst.kind == "tenant-alloc"
            denied = await client.run(ALLOC, tenant="hoarder")
            assert isinstance(denied, JobRejected)
            assert denied.kind == "tenant-alloc"

    asyncio.run(main())


# ----------------------------------------------------------------------
# circuit breaking
# ----------------------------------------------------------------------


def test_breaker_opens_cools_down_and_closes_on_probe():
    config = _config(
        breaker=BreakerPolicy(threshold=2, cooldown_seconds=0.05)
    )

    async def main():
        async with _service(config) as service:
            client = ServiceClient(service)
            for _ in range(2):
                response = await client.run(HOSTILE, tenant="evil")
                assert response.status == "failed"
            # open: admissions rejected, marked requeueable (resubmit
            # after the cooldown is legitimate)
            broken = await client.run(GOOD, tenant="evil")
            assert isinstance(broken, JobRejected)
            assert broken.kind == "breaker"
            assert broken.requeueable
            assert service.ledger.state("evil").breaker.state == "open"
            await asyncio.sleep(0.06)
            # half-open: the probe job is admitted; success closes
            probe = await client.run(GOOD, tenant="evil")
            assert probe.ok
            assert service.ledger.state("evil").breaker.state == "closed"
            counts = service.events.counts()
            assert counts.get("breaker-open", 0) >= 1
            assert counts.get("breaker-close", 0) >= 1

    asyncio.run(main())


# ----------------------------------------------------------------------
# fault retry
# ----------------------------------------------------------------------


def test_fault_injected_job_retries_and_converges():
    async def main():
        async with _service() as service:
            client = ServiceClient(service)
            response = await client.run(
                ALLOC, tenant="chaos", fault=FaultSchedule(fail_at=5)
            )
            # the injected failure fires exactly once; the retry re-runs
            # the same program on the same machine and heap and succeeds
            assert response.ok, response
            assert response.value == "60"
            assert response.attempts == 2
            assert service.stats["retries"] == 1
            assert service.stats["faults_armed"] == 1
            assert not service.conservation_violations

    asyncio.run(main())


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------


def test_drain_finishes_slices_and_rejects_requeueable():
    config = _config(pool_size=1, slice_steps=100)

    async def main():
        service = _service(config)
        await service.start()
        running = service.submit(LOOP, tenant="d1")
        queued = service.submit(LOOP, tenant="d2")  # waits for the machine
        # let the first job take a few slices
        for _ in range(20):
            await asyncio.sleep(0)
        await service.drain()
        in_flight = await running
        assert in_flight.status == "rejected"
        assert in_flight.kind == "drained"
        assert in_flight.requeueable
        waiting = await queued
        assert waiting.status == "rejected"
        assert waiting.kind == "draining"
        assert waiting.requeueable
        # post-drain submissions are turned away immediately
        late = service.submit(GOOD, tenant="d3")
        assert late.done()
        assert late.result().kind == "draining"

    asyncio.run(main())


# ----------------------------------------------------------------------
# compile errors, introspection, TCP front end
# ----------------------------------------------------------------------


def test_compile_error_fails_the_job_not_the_service():
    async def main():
        async with _service() as service:
            client = ServiceClient(service)
            broken = await client.run("(((", tenant="x")
            assert isinstance(broken, JobFailed)
            assert broken.kind == "compile"
            assert broken.message
            # the service is unharmed
            assert (await client.run(GOOD, tenant="x")).ok

    asyncio.run(main())


def test_snapshot_is_json_ready():
    async def main():
        async with _service() as service:
            client = ServiceClient(service)
            await client.run(GOOD, tenant="snap")
            snapshot = service.snapshot()
            assert snapshot["stats"]["ok"] == 1
            assert snapshot["queued"] == 0 and snapshot["running"] == 0
            assert any(t["tenant"] == "snap" for t in snapshot["tenants"])
            json.dumps(snapshot)

    asyncio.run(main())


def test_tcp_server_roundtrip():
    async def main():
        service = _service()
        server = ServeServer(service, port=0)
        await server.start()
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       server.port)

        async def ask(line: bytes) -> dict:
            writer.write(line + b"\n")
            await writer.drain()
            return json.loads(await reader.readline())

        response = await ask(
            json.dumps({"source": GOOD, "tenant": "net"}).encode()
        )
        assert response["status"] == "ok"
        assert response["value"] == "3"
        bad = await ask(b"this is not json")
        assert bad["status"] == "error" and "JSON" in bad["message"]
        missing = await ask(json.dumps({"tenant": "net"}).encode())
        assert missing["status"] == "error"
        # the connection survived both protocol errors
        again = await ask(
            json.dumps({"source": GOOD, "max_steps": 100}).encode()
        )
        assert again["status"] == "failed" and again["kind"] == "steps"
        writer.close()
        await writer.wait_closed()
        await server.close()
        await service.drain()

    asyncio.run(main())
