"""The whole-program summary fixpoint (`repro.absint.summaries`).

Covers the acceptance gates for the interprocedural analysis: the
prelude fixpoint terminates inside the widening bound and the CI time
budget, closed-world programs get real parameter/result joins, owner
liveness keeps dead generic combinators from poisoning the heap model,
and heap-field facts fire on IR the scan can fully attribute.
"""

import time

import pytest

from repro.absint import (
    MAX_SWEEPS,
    summarize_program,
)
from repro.api import CompileOptions, _expander_for, _optimized_prelude
from repro.ir import Const, GlobalSet, Let, LocalVar, Prim, Program, Seq, Var
from repro.opt import optimize_program
from repro.sexpr import read_all

FIB_SRC = """
(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(display (fib 12))
"""


def _compiled_program(source):
    """The frozen-prelude compile pipeline, keeping every form so the
    suffix lines up with the prefix (as `repro absint` does)."""
    options = CompileOptions()
    options.optimizer.prune_globals = False
    prelude_forms, expander = _expander_for(options)
    opt_prelude, _defined = _optimized_prelude(
        options, prelude_forms, expander.global_names
    )
    user = expander.expand_program(read_all(source))
    program = Program(
        list(opt_prelude) + list(user.forms), expander.global_names
    )
    program = optimize_program(
        program, options.optimizer, frozen_prefix=len(opt_prelude)
    )
    return program, len(opt_prelude)


def _prelude_program():
    options = CompileOptions()
    prelude_forms, expander = _expander_for(options)
    opt_prelude, _defined = _optimized_prelude(
        options, prelude_forms, expander.global_names
    )
    return Program(list(opt_prelude), expander.global_names)


# ----------------------------------------------------------------------
# termination and the CI time budget
# ----------------------------------------------------------------------


def test_prelude_fixpoint_terminates_within_widening_bound():
    program = _prelude_program()
    start = time.monotonic()
    summaries = summarize_program(program, open_world=True)
    elapsed = time.monotonic() - start
    assert summaries.stable
    assert summaries.sweeps <= MAX_SWEEPS
    # The acceptance gate: the full prelude converges fast enough for
    # every compile to afford it.
    assert elapsed < 2.0, f"prelude fixpoint took {elapsed:.2f}s"


def test_prefix_summaries_are_cached():
    from repro.absint.summaries import _PREFIX_CACHE

    program, start = _compiled_program(FIB_SRC)
    summarize_program(program, start=start)
    assert _PREFIX_CACHE
    # A second compile against the same frozen prefix converges almost
    # immediately: only the user suffix is re-analysed.
    t0 = time.monotonic()
    again = summarize_program(program, start=start)
    assert again.stable
    assert time.monotonic() - t0 < 0.5


# ----------------------------------------------------------------------
# closed-world parameter/result joins
# ----------------------------------------------------------------------


def test_fib_summary_facts():
    program, start = _compiled_program(FIB_SRC)
    summaries = summarize_program(program, start=start)
    assert summaries.stable and not summaries.open_world
    info = summaries.context.by_name["fib"]
    # Every call site passes a fixnum; the result joins fixnums only.
    assert info.params[0].tags == frozenset({0})
    assert info.result.tags == frozenset({0})
    assert info.call_sites == 3  # toplevel + two recursive sites
    assert not info.escaped and not info.variadic and info.analyzable


def test_open_world_forces_top_on_globals_only():
    program = _prelude_program()
    summaries = summarize_program(program, open_world=True)
    from repro.absint import ALL_TAGS

    # Globals are reachable from unseen user code: parameters stay ⊤.
    for info in summaries.functions.values():
        if info.is_global and info.tracks_params:
            for param in info.params:
                assert param.tags == ALL_TAGS, (info.label, param)
    # Heap facts are never consumed open-world.
    assert not summaries.heap.usable


# ----------------------------------------------------------------------
# owner liveness
# ----------------------------------------------------------------------


def test_liveness_excludes_dead_generic_combinators():
    program, start = _compiled_program(FIB_SRC)
    summaries = summarize_program(program, start=start)
    assert summaries.live is not None
    names = {
        summaries.owner_labels.get(key, "?"): key in summaries.live
        for key in summaries.contribs
        if key is not None
    }
    # fib never reaches for the parametric representation combinators;
    # their wild-ish contributions must not poison the merged model.
    for combinator in ("%pointer-mutator", "%maybe-checked-mutator"):
        assert combinator in names, names.keys()
        assert not names[combinator], f"{combinator} should be dead"
    assert not summaries.contribution.wild
    assert summaries.heap.usable


def test_toplevel_is_always_live():
    program, start = _compiled_program("(display (+ 1 2))")
    summaries = summarize_program(program, start=start)
    assert summaries.live is not None
    assert None in summaries.live


# ----------------------------------------------------------------------
# heap-field facts on directly constructed IR
# ----------------------------------------------------------------------


def _vector_alloc_form():
    """(let ((v (%alloc 16 2))) (%store v 6 40) v) — one tag-2 object
    whose field 0 is initialised at birth with fixnum 5 (word 40)."""
    var = LocalVar("v")
    alloc = Prim("%alloc", [Const(16), Const(2)])
    store = Prim("%store", [Var(var), Const(6), Const(40)])
    return GlobalSet("obj", Let([(var, alloc)], Seq([store, Var(var)])))


def test_heap_fact_fires_on_fully_attributed_ir():
    program = Program([_vector_alloc_form()], ["obj"])
    summaries = summarize_program(program)
    assert summaries.stable
    fact = summaries.heap.fact(2, 0)
    assert fact is not None
    assert fact.as_constant() == 40
    # No store ever hits field 1, so there is no fact to consume there
    # (it is not alloc-initialised).
    assert summaries.heap.fact(2, 1) is None


def test_wild_store_poisons_the_heap_model():
    var = LocalVar("v")
    alloc = Prim("%alloc", [Const(16), Var(LocalVar("n"))])  # non-const tag
    form = GlobalSet("obj", Let([(var, alloc)], Var(var)))
    program = Program([form], ["obj"])
    summaries = summarize_program(program)
    assert summaries.contribution.wild
    assert summaries.heap.fact(2, 0) is None


def test_mutation_after_birth_joins_into_the_fact():
    var = LocalVar("v")
    alloc = Prim("%alloc", [Const(16), Const(2)])
    init = Prim("%store", [Var(var), Const(6), Const(40)])
    mutate = Prim("%store", [Var(var), Const(6), Const(48)])
    form = GlobalSet(
        "obj", Let([(var, alloc)], Seq([init, mutate, Var(var)]))
    )
    program = Program([form], ["obj"])
    summaries = summarize_program(program)
    fact = summaries.heap.fact(2, 0)
    assert fact is not None
    # Both stored words are inside the invariant; neither is "the"
    # constant any more.
    assert fact.as_constant() is None
    assert not fact.excludes_word(40) and not fact.excludes_word(48)
