"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_run_expression(capsys):
    assert main(["run", "-e", "(+ 20 22)", "--config", "unoptimized"]) == 0
    out = capsys.readouterr().out
    assert "=> 42" in out


def test_run_with_output_and_stats(capsys):
    code = main(
        ["run", "-e", '(display "hey")', "--config", "unoptimized", "--stats"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("hey")
    assert "instructions" in captured.err


def test_run_file(tmp_path, capsys):
    path = tmp_path / "program.scm"
    path.write_text("(define (double x) (* 2 x)) (double 21)")
    assert main(["run", str(path), "--config", "unoptimized"]) == 0
    assert "=> 42" in capsys.readouterr().out


def test_run_list_result_is_written(capsys):
    main(["run", "-e", "(list 1 2)", "--config", "unoptimized"])
    assert "=> (1 2)" in capsys.readouterr().out


def test_disassemble(capsys):
    code = main(
        [
            "disassemble",
            "-e",
            "(define (f x) (car x))\n(f '(1))",
            "--unsafe",
            "--keep-globals",
            "--name",
            "f",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "LD" in out and "RET" in out


def test_stats_reports_counters(capsys):
    assert main(["stats", "-e", "(+ 1 2)", "--config", "unoptimized"]) == 0
    out = capsys.readouterr().out
    assert "instructions:" in out
    assert "by opcode:" in out


def test_error_exit_code(capsys):
    assert main(["run", "-e", "(car 5)", "--config", "unoptimized"]) == 1
    assert "error" in capsys.readouterr().err


def test_missing_source_is_rejected():
    with pytest.raises(SystemExit):
        main(["run"])


def test_baseline_config(capsys):
    assert main(["run", "-e", "(* 6 7)", "--config", "baseline"]) == 0
    assert "=> 42" in capsys.readouterr().out


def test_run_with_input_text(capsys):
    code = main(
        [
            "run",
            "-e",
            "(list (read) (read))",
            "--config",
            "unoptimized",
            "--input",
            "11 (a b)",
        ]
    )
    assert code == 0
    assert "=> (11 (a b))" in capsys.readouterr().out


def test_repl_session(capsys, monkeypatch):
    lines = iter(["(define x 20)", "(+ x 22)", "(car 5)", ":q"])
    monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
    assert main(["repl", "--config", "unoptimized"]) == 0
    out = capsys.readouterr().out
    assert "=> 42" in out
    assert "error:" in out  # the (car 5) failure is reported, not fatal


def test_repl_eof_exits(capsys, monkeypatch):
    def raise_eof(prompt=""):
        raise EOFError

    monkeypatch.setattr("builtins.input", raise_eof)
    assert main(["repl", "--config", "unoptimized"]) == 0
