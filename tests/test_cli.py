"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_run_expression(capsys):
    assert main(["run", "-e", "(+ 20 22)", "--config", "unoptimized"]) == 0
    out = capsys.readouterr().out
    assert "=> 42" in out


def test_run_with_output_and_stats(capsys):
    code = main(
        ["run", "-e", '(display "hey")', "--config", "unoptimized", "--stats"]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("hey")
    assert "instructions" in captured.err


def test_run_file(tmp_path, capsys):
    path = tmp_path / "program.scm"
    path.write_text("(define (double x) (* 2 x)) (double 21)")
    assert main(["run", str(path), "--config", "unoptimized"]) == 0
    assert "=> 42" in capsys.readouterr().out


def test_run_list_result_is_written(capsys):
    main(["run", "-e", "(list 1 2)", "--config", "unoptimized"])
    assert "=> (1 2)" in capsys.readouterr().out


def test_disassemble(capsys):
    code = main(
        [
            "disassemble",
            "-e",
            "(define (f x) (car x))\n(f '(1))",
            "--unsafe",
            "--keep-globals",
            "--name",
            "f",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "LD" in out and "RET" in out


def test_stats_reports_counters(capsys):
    assert main(["stats", "-e", "(+ 1 2)", "--config", "unoptimized"]) == 0
    out = capsys.readouterr().out
    assert "instructions:" in out
    assert "by opcode:" in out


def test_vm_trap_exit_code(capsys):
    # A VM type trap maps to the documented exit code 5.
    assert main(["run", "-e", "(car 5)", "--config", "unoptimized"]) == 5
    assert "error" in capsys.readouterr().err


def test_reader_error_exit_code(capsys):
    assert main(["run", "-e", "(car", "--config", "unoptimized"]) == 2
    assert "error" in capsys.readouterr().err


def test_compile_error_exit_code(capsys):
    assert main(["run", "-e", "(lambda)", "--config", "unoptimized"]) == 3
    assert "error" in capsys.readouterr().err


def test_lint_werror_exit_code(capsys):
    code = main(["lint", "--Werror", "-e", "(define helper 42) (display 1)"])
    capsys.readouterr()
    assert code == 4


def test_budget_exit_code(capsys):
    code = main(
        [
            "run",
            "-e",
            "(let loop ((i 0)) (loop (+ i 1)))",
            "--config",
            "unoptimized",
            "--max-steps",
            "1000",
        ]
    )
    assert code == 6
    assert "exceeded 1000 steps" in capsys.readouterr().err


def test_deadline_flag_trips(capsys):
    code = main(
        [
            "run",
            "-e",
            "(let loop ((i 0)) (loop (+ i 1)))",
            "--config",
            "unoptimized",
            "--deadline",
            "0.05",
        ]
    )
    assert code == 6
    assert "deadline" in capsys.readouterr().err


def test_faultsweep_clean_program(tmp_path, capsys):
    path = tmp_path / "program.scm"
    path.write_text("(define (double x) (* 2 x)) (display (double 21))")
    code = main(
        ["faultsweep", str(path), "--engine", "naive", "--max-sites", "4"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "0 violations" in captured.out
    assert "VIOLATION" not in captured.err


def test_faultsweep_exits_nonzero_on_unexpected_exception(
    tmp_path, capsys, monkeypatch
):
    # A sweep whose runs raise outside the structured-trap contract must
    # fail the CLI even with zero classic violations recorded.
    from repro.vm import faultinject

    report = faultinject.SweepReport(label="prog.scm")
    outcome = faultinject.FaultOutcome(
        schedule="fail-at-1", engine="naive", status="trapped"
    )
    faultinject._record_unexpected(outcome, RuntimeError("engine bug"))
    report.outcomes.append(outcome)
    monkeypatch.setattr(
        faultinject, "sweep_source", lambda *args, **kwargs: report
    )
    path = tmp_path / "prog.scm"
    path.write_text("(+ 1 2)")
    code = main(["faultsweep", str(path), "--engine", "naive"])
    captured = capsys.readouterr()
    assert code == 1
    assert "1 unexpected exceptions" in captured.out
    assert "unexpected exception class RuntimeError" in captured.err


def test_serve_smoke_cli(tmp_path, capsys):
    events = tmp_path / "events.jsonl"
    code = main(
        [
            "serve", "--smoke", "2", "--tenants", "2", "--no-chaos",
            "--no-hostile", "--pool", "2", "--json",
            "--events", str(events),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    import json

    report = json.loads(captured.out)
    assert report["ok"] is True
    assert report["completed"] == 2
    assert report["lost"] == 0 and report["duplicated"] == 0
    assert events.exists()
    first = json.loads(events.read_text().splitlines()[0])
    assert first["kind"] == "start"


def test_missing_source_is_rejected():
    with pytest.raises(SystemExit):
        main(["run"])


def test_baseline_config(capsys):
    assert main(["run", "-e", "(* 6 7)", "--config", "baseline"]) == 0
    assert "=> 42" in capsys.readouterr().out


def test_run_with_input_text(capsys):
    code = main(
        [
            "run",
            "-e",
            "(list (read) (read))",
            "--config",
            "unoptimized",
            "--input",
            "11 (a b)",
        ]
    )
    assert code == 0
    assert "=> (11 (a b))" in capsys.readouterr().out


def test_repl_session(capsys, monkeypatch):
    lines = iter(["(define x 20)", "(+ x 22)", "(car 5)", ":q"])
    monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
    assert main(["repl", "--config", "unoptimized"]) == 0
    out = capsys.readouterr().out
    assert "=> 42" in out
    assert "error:" in out  # the (car 5) failure is reported, not fatal


def test_repl_eof_exits(capsys, monkeypatch):
    def raise_eof(prompt=""):
        raise EOFError

    monkeypatch.setattr("builtins.input", raise_eof)
    assert main(["repl", "--config", "unoptimized"]) == 0
