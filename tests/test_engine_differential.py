"""Cross-engine differential suite.

The VM has three dispatch engines (naive switch, threaded closures,
compile-to-Python) and two code shapes (fused superinstructions
on/off).  All six combinations must be *observationally identical*:
same decoded value, same output, same decomposed dynamic instruction
counts, and the same error message on failure paths — and they must
agree with the reference IR interpreter.  Any disagreement localizes a
bug to the engine (naive vs threaded vs compiled), the fusion pass
(fused vs unfused), or the backend (VM vs IR interpreter).

The generative section at the bottom drives the same matrix with
Hypothesis-built random ISA programs (bounded arithmetic / memory /
branch / call mix, forward branches only so every program terminates),
checking value, steps, opcode counts, dispatches, heap conservation,
and sliced execution for bit-for-bit agreement.
"""

import os

import pytest

from repro import CompileOptions, compile_source, decode
from repro.errors import SchemeError, VMError
from repro.vm import isa
from repro.vm.machine import Machine

from .test_interp_differential import _decode, _expand
from .test_scheme_suite import SUITE

EXAMPLES_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "scm"
)
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".scm")
)

ENGINES = ["naive", "threaded", "compiled"]
SHAPES = [False, True]  # fuse?


def _compile_both(source, safety=True):
    """The same program compiled unfused and fused."""
    out = {}
    for fuse in SHAPES:
        options = CompileOptions(safety=safety)
        options.fuse = fuse
        out[fuse] = compile_source(source, options)
    return out


def _all_runs(source, safety=True, **kwargs):
    """[(label, RunResult)] for engines x shapes."""
    runs = []
    for fuse, compiled in _compile_both(source, safety).items():
        for engine in ENGINES:
            label = f"{engine}{'+fuse' if fuse else ''}"
            runs.append((label, compiled.run(engine=engine, **kwargs)))
    return runs


def assert_identical(source, safety=True, **kwargs):
    """All four engine/shape runs agree on every observable."""
    runs = _all_runs(source, safety, **kwargs)
    base_label, base = runs[0]
    base_value = _decode(base.machine, base.value)
    for label, run in runs[1:]:
        value = _decode(run.machine, run.value)
        assert value == base_value, (base_label, label)
        assert run.output == base.output, (base_label, label)
        # the count-decomposition invariant: fused superinstructions are
        # charged to their constituent base opcodes, so counts and steps
        # are identical across engines AND across code shapes
        assert run.steps == base.steps, (base_label, label)
        assert run.opcode_counts == base.opcode_counts, (base_label, label)
    return base_value


# ----------------------------------------------------------------------
# corpus: the example programs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("filename", EXAMPLES)
def test_examples_agree_across_engines(filename):
    with open(os.path.join(EXAMPLES_DIR, filename)) as handle:
        source = handle.read()
    assert_identical(source)


@pytest.mark.parametrize("filename", EXAMPLES)
def test_examples_agree_with_ir_interpreter(filename):
    from repro.ir.interp import Interpreter
    from repro.opt import fix_letrec_program

    with open(os.path.join(EXAMPLES_DIR, filename)) as handle:
        source = handle.read()
    interp = Interpreter()
    reference = interp.run(fix_letrec_program(_expand(source)))
    ref_value = _decode(interp, reference.value)
    for label, run in _all_runs(source):
        assert _decode(run.machine, run.value) == ref_value, label
        assert run.output == reference.output, label


# ----------------------------------------------------------------------
# corpus: the in-VM Scheme test suite
# ----------------------------------------------------------------------


def test_scheme_suite_agrees_across_engines():
    value = assert_identical(SUITE)
    # the suite prints FAIL lines for failing checks and returns the
    # symbol all-passed on success; output equality above already proved
    # every engine/shape saw the same checks pass
    assert str(value) == "all-passed"


# ----------------------------------------------------------------------
# small semantic corpus (fast compiles, unoptimized config)
# ----------------------------------------------------------------------

PROGRAMS = [
    "(+ 1 2)",
    "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (fact 9)",
    "(let loop ((i 0) (acc '())) (if (= i 5) (length acc) (loop (+ i 1) (cons i acc))))",
    "(define v (make-vector 5 0)) (vector-set! v 3 9) (vector-ref v 3)",
    "(display (list 1 2)) 7",
    "((lambda (a . r) (+ a (length r))) 1 2 3)",
    "(apply + '(20 22))",
    "(call-with-current-continuation (lambda (k) (+ 1 (k 41))))",
    "(string-length (string-append \"ab\" \"cde\"))",
    "(quotient -17 5)",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_programs_agree_across_engines(source):
    assert_identical(source, safety=True)


# ----------------------------------------------------------------------
# error paths: same exception type, same message
# ----------------------------------------------------------------------

FAILING = [
    "(car 5)",
    "(vector-ref (make-vector 2 0) 9)",
    "(quotient 1 0)",
    "((lambda (x) x))",
    "(undefined-procedure 1 2)",
    "(+ 'a 1)",
]


@pytest.mark.parametrize("source", FAILING)
def test_error_messages_agree_across_engines(source):
    outcomes = []
    for fuse, compiled in _compile_both(source).items():
        for engine in ENGINES:
            label = f"{engine}{'+fuse' if fuse else ''}"
            try:
                compiled.run(engine=engine)
            except (SchemeError, VMError) as error:
                outcomes.append((label, type(error).__name__, str(error)))
            else:
                outcomes.append((label, None, None))
    kinds = {(kind, message) for _label, kind, message in outcomes}
    assert len(kinds) == 1, outcomes
    assert outcomes[0][1] is not None, "expected the program to fail"


# ----------------------------------------------------------------------
# regression: escape continuation used after its extent ended
# ----------------------------------------------------------------------


ESCAPE_AFTER_EXTENT = """
(define saved #f)
(call-with-current-continuation
  (lambda (k) (set! saved k) 0))
(saved 1)
"""


def test_escape_after_extent_agrees():
    # The VM supports escape (upward) continuations only: invoking one
    # whose dynamic extent ended must fail identically everywhere.
    outcomes = set()
    for fuse, compiled in _compile_both(ESCAPE_AFTER_EXTENT).items():
        for engine in ENGINES:
            try:
                compiled.run(engine=engine)
            except SchemeError as error:
                outcomes.add(str(error))
            else:
                # re-invoking within a still-live outer extent is legal;
                # the run terminating normally is also fine as long as
                # every engine/shape behaves the same
                result = compiled.run(engine=engine)
                outcomes.add(("value", result.value))
    assert len(outcomes) == 1, outcomes


ESCAPE_DEEP_UNWIND = """
(define (find k lst)
  (if (null? lst)
      0
      (if (= (car lst) 3)
          (k (* 10 (car lst)))
          (+ 1 (find k (cdr lst))))))
(call-with-current-continuation
  (lambda (k) (find k '(1 2 3 4 5))))
"""


def test_escape_deep_unwind_agrees():
    # a throw through several live frames must pop the same frames and
    # deliver the same value on every engine/shape
    assert assert_identical(ESCAPE_DEEP_UNWIND) == 30


# ----------------------------------------------------------------------
# regression: max_steps exhausts at the same step index on both engines
# ----------------------------------------------------------------------


def test_max_steps_trips_at_same_index():
    source = "(define (spin n) (if (= n 0) 0 (spin (- n 1)))) (spin 100000)"
    budgets = {}
    for fuse, compiled in _compile_both(source).items():
        for engine in ENGINES:
            machine = Machine(
                compiled.vm_program, max_steps=20_000, engine=engine
            )
            with pytest.raises(VMError, match="exceeded 20000 steps"):
                machine.run()
            # the budget must trip after exactly the same number of
            # counted base steps — even when the budget lands on the
            # *first* half of a fused pair
            budgets[(engine, fuse)] = machine.steps
    assert len(set(budgets.values())) == 1, budgets


def test_max_steps_can_trip_mid_pair():
    # Walk the step budget through a window of values; for each, both
    # engines and both shapes agree on the exact trip step.  A fused
    # pair whose first half lands on the budget boundary must trip
    # before executing its second half (steps == budget + 1).
    source = "(let loop ((i 0)) (if (= i 1000) i (loop (+ i 1))))"
    both = _compile_both(source)
    for budget in range(5000, 5008):
        steps_seen = set()
        for fuse, compiled in both.items():
            for engine in ENGINES:
                machine = Machine(
                    compiled.vm_program, max_steps=budget, engine=engine
                )
                with pytest.raises(VMError):
                    machine.run()
                steps_seen.add(machine.steps)
        assert steps_seen == {budget + 1}, (budget, steps_seen)


# ----------------------------------------------------------------------
# regression: shift counts >= 64 mask identically
# ----------------------------------------------------------------------


def test_large_shift_counts_mask_identically():
    # The ISA masks shift counts to 6 bits (x86-64/RISC-V semantics).
    # Build the shifts out of fixnum ops the compiler emits directly.
    source = """
    (define (sh x n) (* x (expt 2 n)))
    (list (sh 1 62) (sh 3 10) (quotient 1024 (expt 2 5)))
    """
    assert_identical(source)


def test_shift_ops_mask_at_isa_level():
    # Drive SHL/SHR/SAR with counts >= 64 directly through the ISA: the
    # count operand must be masked to 6 bits by every engine and by the
    # fused-handler templates alike.
    from repro.vm.isa import CodeObject, VMProgram

    for op_name, count, a, expect in [
        ("SHL", 64, 3, 3),          # 64 & 63 == 0: identity
        ("SHL", 65, 3, 6),          # 65 & 63 == 1
        ("SHR", 64, 12, 12),
        ("SAR", 70, 1 << 63, (1 << 64) - (1 << 57)),  # arithmetic fill
    ]:
        op = getattr(isa, op_name)
        code = CodeObject(name="main", nparams=0, has_rest=False, nfree=0)
        code.nregs = 3
        code.instructions = [
            [isa.LDC, 0, a],
            [isa.LDC, 1, count],
            [op, 2, 0, 1],
            [isa.HALT, 2],
        ]
        program = VMProgram([code], [])
        results = {
            engine: Machine(program, engine=engine).run().value
            for engine in ENGINES
        }
        assert set(results.values()) == {expect}, (op_name, count, results)


# ----------------------------------------------------------------------
# unit: RunResult opcode counts key isa names, decomposed
# ----------------------------------------------------------------------


def test_opcode_counts_key_base_names():
    compiled = _compile_both("(+ 1 2)")[True]
    for engine in ENGINES:
        result = compiled.run(engine=engine)
        assert result.opcode_counts, "expected a non-empty histogram"
        for key in result.opcode_counts:
            assert isinstance(key, str), key
            assert key in isa.OPCODE_NAMES, key
            # never a fused name: counts decompose to base opcodes
            assert "." not in key, key
        # RunResult.count() is the lookup helper reporters use
        assert result.count("HALT") == 1
        assert result.count("NO-SUCH-OP") == 0
        assert sum(result.opcode_counts.values()) == result.steps


# ----------------------------------------------------------------------
# fault schedules: observational identity must survive a hostile heap
# ----------------------------------------------------------------------


def _gc_every_run(compiled, engine, every, heap_words=1 << 16):
    from repro.vm.faultinject import FaultInjectingHeap, FaultSchedule

    machine = Machine(compiled.vm_program, engine=engine)
    machine.install_heap(
        FaultInjectingHeap(heap_words, FaultSchedule(gc_every=every))
    )
    result = machine.run()
    machine.heap.check_conservation()
    return result


@pytest.mark.parametrize("filename", EXAMPLES)
def test_examples_agree_under_gc_every_alloc(filename):
    # A forced full collection before *every* allocation moves objects at
    # allocation points the occupancy trigger would never pick.  Every
    # engine/shape must still produce the clean run's value, output, and
    # decomposed counts.
    with open(os.path.join(EXAMPLES_DIR, filename)) as handle:
        source = handle.read()
    both = _compile_both(source)
    clean = both[False].run(engine="naive")
    clean_value = _decode(clean.machine, clean.value)
    for fuse, compiled in both.items():
        for engine in ENGINES:
            label = f"{engine}{'+fuse' if fuse else ''}"
            run = _gc_every_run(compiled, engine, every=1)
            assert _decode(run.machine, run.value) == clean_value, label
            assert run.output == clean.output, label
            assert run.steps == clean.steps, label
            assert run.opcode_counts == clean.opcode_counts, label


def test_injected_alloc_failure_trips_identically():
    # Allocation order is an observable: with an injected failure at the
    # k-th allocation, every engine/shape must trap at the same counted
    # step with the same message, keep conservation, and then complete a
    # clean re-run on the same machine and heap.
    from repro.errors import HeapExhausted
    from repro.vm.faultinject import FaultInjectingHeap, FaultSchedule

    source = (
        "(let loop ((i 0) (acc '())) "
        "  (if (= i 40) (length acc) (loop (+ i 1) (cons i acc))))"
    )
    both = _compile_both(source)
    for k in (1, 5, 23):
        outcomes = set()
        for fuse, compiled in both.items():
            for engine in ENGINES:
                machine = Machine(compiled.vm_program, engine=engine)
                machine.install_heap(
                    FaultInjectingHeap(1 << 16, FaultSchedule(fail_at=k))
                )
                with pytest.raises(HeapExhausted) as excinfo:
                    machine.run()
                machine.heap.check_conservation()
                retry = machine.run()
                value = _decode(machine, retry.value)
                outcomes.add((str(excinfo.value), machine.steps, value))
        assert len(outcomes) == 1, (k, outcomes)
        assert next(iter(outcomes))[2] == 40


def test_dispatches_versus_steps():
    both = _compile_both(
        "(define (f n) (if (= n 0) 0 (f (- n 1)))) (f 200)"
    )
    for engine in ENGINES:
        unfused = both[False].run(engine=engine)
        fused = both[True].run(engine=engine)
        # unfused code: every step is one dispatch
        assert unfused.dispatches == unfused.steps
        # fused code: each executed pair saves exactly one dispatch
        assert fused.steps == unfused.steps
        assert fused.dispatches < fused.steps
        assert fused.engine == engine


# ----------------------------------------------------------------------
# generative conformance: random ISA programs, every engine agrees
# ----------------------------------------------------------------------

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    HAVE_HYPOTHESIS = False

if HAVE_HYPOTHESIS:
    from repro.backend.peephole import fuse_superinstructions
    from repro.errors import ReproError
    from repro.vm.isa import CodeObject, VMProgram

    _ARITH3 = [
        isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.MOD,
        isa.AND, isa.OR, isa.XOR,
        isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPULT, isa.CMPULE,
    ]
    _ARITH2I = [
        isa.ADDI, isa.SUBI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
        isa.SHLI, isa.SHRI, isa.SARI,
        isa.CMPEQI, isa.CMPNEI, isa.CMPLTI, isa.CMPLEI,
    ]
    _BRANCH2 = [isa.JT, isa.JF]
    _BRANCH3R = [isa.JEQ, isa.JNE, isa.JLT, isa.JGE, isa.JULT, isa.JUGE]
    _BRANCH3I = [isa.JEQI, isa.JNEI, isa.JLTI, isa.JGEI]

    _reg = st.integers(1, 5)  # r0 stays the block pointer
    _imm = st.integers(-64, 64)
    _disp = st.sampled_from([8, 16, 24, 32])  # within the 4-word block

    # main-body layout: [ALLOCI + 5×LDC prologue][body][4×XOR + HALT]
    _PROLOGUE = 6

    @st.composite
    def _instruction_lists(draw):
        """A random terminating main body (branches only jump forward)."""
        nbody = draw(st.integers(min_value=0, max_value=14))
        body = []
        for i in range(nbody):
            kind = draw(st.integers(0, 6))
            if kind == 0:
                body.append([
                    draw(st.sampled_from(_ARITH3)),
                    draw(_reg), draw(_reg), draw(_reg),
                ])
            elif kind == 1:
                body.append([
                    draw(st.sampled_from(_ARITH2I)),
                    draw(_reg), draw(_reg), draw(_imm),
                ])
            elif kind == 2:
                body.append([isa.LD, draw(_reg), 0, draw(_disp)])
            elif kind == 3:
                body.append([isa.ST, 0, draw(_disp), draw(_reg)])
            elif kind == 4:
                target = _PROLOGUE + draw(st.integers(i + 1, nbody))
                bkind = draw(st.integers(0, 2))
                if bkind == 0:
                    body.append([
                        draw(st.sampled_from(_BRANCH2)), draw(_reg), target,
                    ])
                elif bkind == 1:
                    body.append([
                        draw(st.sampled_from(_BRANCH3R)),
                        draw(_reg), draw(_reg), target,
                    ])
                else:
                    body.append([
                        draw(st.sampled_from(_BRANCH3I)),
                        draw(_reg), draw(_imm), target,
                    ])
            elif kind == 5:
                body.append([
                    isa.CALLL, draw(_reg), 1, [draw(_reg), draw(_reg)],
                ])
            else:
                body.append([isa.MOV, draw(_reg), draw(_reg)])
        prologue = [[isa.ALLOCI, 0, 4, 0]] + [
            [isa.LDC, r, draw(st.integers(-3, 20))] for r in range(1, 6)
        ]
        epilogue = [[isa.XOR, 1, 1, r] for r in range(2, 6)]
        epilogue.append([isa.HALT, 1])
        return prologue + body + epilogue

    def _build_program(instrs, fuse):
        main = CodeObject(name="main", nparams=0, has_rest=False, nfree=0)
        main.nregs = 6
        main.instructions = [list(ins) for ins in instrs]
        helper = CodeObject(name="h", nparams=2, has_rest=False, nfree=0)
        helper.nregs = 3
        helper.instructions = [
            [isa.ADD, 2, 0, 1],
            [isa.ANDI, 2, 2, 255],
            [isa.RET, 2],
        ]
        if fuse:
            fuse_superinstructions(main)
            fuse_superinstructions(helper)
        return VMProgram([main, helper], [])

    def _observe(program, engine, slice_size=None):
        """Everything observable about one run (or its failure)."""
        machine = Machine(program, engine=engine, heap_words=1 << 12)
        try:
            if slice_size is None:
                result = machine.run()
            else:
                result = None
                while result is None:
                    result = machine.run_slice(slice_size)
        except ReproError as error:
            return (
                "error", type(error).__name__, str(error), machine.steps,
            )
        check = getattr(machine.heap, "check_conservation", None)
        if check is not None:
            check()
        return (
            "ok", result.value, result.steps, result.dispatches,
            tuple(sorted(result.opcode_counts.items())), result.output,
        )

    def _strip_dispatches(outcome):
        """Drop the dispatch count: it differs across *shapes* by design."""
        if outcome[0] == "error":
            return outcome
        return outcome[:3] + outcome[4:]

    @settings(max_examples=60, deadline=None)
    @given(instrs=_instruction_lists())
    def test_generated_programs_agree_across_engines(instrs):
        per_shape = {}
        for fuse in SHAPES:
            program = _build_program(instrs, fuse)
            outcomes = [_observe(program, engine) for engine in ENGINES]
            assert len(set(outcomes)) == 1, (
                fuse, list(zip(ENGINES, outcomes)),
            )
            per_shape[fuse] = outcomes[0]
        # across shapes everything but the dispatch count is identical
        assert _strip_dispatches(per_shape[False]) == _strip_dispatches(
            per_shape[True]
        ), per_shape

    @settings(max_examples=25, deadline=None)
    @given(instrs=_instruction_lists(), slice_size=st.integers(1, 7))
    def test_generated_programs_slice_identically(instrs, slice_size):
        # tiny slices land budget suspensions on every instruction —
        # including mid-fused-pair — and resumption must be invisible
        for fuse in SHAPES:
            program = _build_program(instrs, fuse)
            for engine in ENGINES:
                clean = _observe(program, engine)
                sliced = _observe(program, engine, slice_size=slice_size)
                assert sliced == clean, (fuse, engine, slice_size)
