"""The unified resource-budget subsystem: fuel, deadlines, allocation.

Budgets are enforced on the engines' counted dispatch fast path (one
compare per counted instruction).  A trip raises a structured
``BudgetExceeded`` subclass, leaves the machine *suspended* — not
corrupted — and ``resume()`` continues the run under new limits with
exact cumulative counters.
"""

import pytest

from repro import CompileOptions, compile_source, decode
from repro.errors import (
    AllocBudgetExceeded,
    BudgetExceeded,
    DeadlineExceeded,
    StepBudgetExceeded,
    VMError,
)
from repro.vm import BUDGET_CHECK_INTERVAL, Budget
from repro.vm.machine import Machine

ENGINES = ["naive", "threaded", "compiled"]

# a loop long enough that every budget kind can trip mid-flight
LOOP = "(let loop ((i 0)) (if (= i 2000) i (loop (+ i 1))))"
# a loop that allocates on every iteration
ALLOC_LOOP = (
    "(let loop ((i 0) (acc '())) "
    "  (if (= i 2000) (length acc) (loop (+ i 1) (cons i acc))))"
)


def _compile(source, fuse=True):
    options = CompileOptions(safety=True)
    options.fuse = fuse
    return compile_source(source, options)


def _machines(source, **kwargs):
    for fuse in (False, True):
        compiled = _compile(source, fuse)
        for engine in ENGINES:
            label = f"{engine}{'+fuse' if fuse else ''}"
            yield label, Machine(
                compiled.vm_program, engine=engine, **kwargs
            )


# ----------------------------------------------------------------------
# step budget (fuel)
# ----------------------------------------------------------------------


def test_step_budget_error_is_structured():
    for label, machine in _machines(LOOP, max_steps=1000):
        with pytest.raises(StepBudgetExceeded) as excinfo:
            machine.run()
        error = excinfo.value
        # historical message preserved for callers matching on str()
        assert str(error) == "execution exceeded 1000 steps", label
        assert error.budget == "steps"
        assert error.steps == machine.steps == 1001, label
        assert error.max_steps == 1000
        # and it is still a VMError / BudgetExceeded for old handlers
        assert isinstance(error, BudgetExceeded)
        assert isinstance(error, VMError)


def test_step_trap_snapshot_and_resume():
    clean = _compile(LOOP).run()
    for label, machine in _machines(LOOP, max_steps=1000):
        with pytest.raises(StepBudgetExceeded) as excinfo:
            machine.run()
        info = machine.last_trap
        assert info is not None and info is excinfo.value.trap, label
        assert info.kind == "steps"
        assert info.resumable
        assert info.steps == 1001
        assert info.pc is not None and info.pc >= 0
        assert isinstance(info.opcode, str) and info.opcode
        # resume with the budget removed: identical observables to a
        # clean uninterrupted run, cumulative counters included
        result = machine.resume(max_steps=None)
        assert result.value == clean.value, label
        assert result.steps == clean.steps, label
        assert result.opcode_counts == clean.opcode_counts, label


def test_resume_sweep_hits_mid_pair_boundaries():
    # Walk the budget across a window so the trip lands on every phase
    # of a fused pair at least once; resume must stay exact everywhere.
    clean = _compile(LOOP).run()
    for budget in range(500, 509):
        for label, machine in _machines(LOOP, max_steps=budget):
            with pytest.raises(StepBudgetExceeded):
                machine.run()
            assert machine.steps == budget + 1, (label, budget)
            result = machine.resume(max_steps=None)
            assert result.value == clean.value, (label, budget)
            assert result.steps == clean.steps, (label, budget)


def test_resume_in_installments():
    # Raising the budget little by little replays the whole program.
    clean = _compile(LOOP).run()
    compiled = _compile(LOOP)
    for engine in ENGINES:
        machine = Machine(compiled.vm_program, max_steps=700, engine=engine)
        with pytest.raises(StepBudgetExceeded):
            machine.run()
        budget = 700
        result = None
        while result is None:
            budget += 700
            try:
                result = machine.resume(max_steps=budget)
            except StepBudgetExceeded:
                continue
        assert result.value == clean.value, engine
        assert result.steps == clean.steps, engine


def test_resume_requires_suspension_and_headroom():
    compiled = _compile(LOOP)
    machine = Machine(compiled.vm_program, max_steps=1000)
    with pytest.raises(VMError, match="nothing to resume"):
        machine.resume()
    with pytest.raises(StepBudgetExceeded):
        machine.run()
    # steps is now 1001; a smaller budget cannot make progress
    with pytest.raises(VMError, match="larger step budget"):
        machine.resume(max_steps=500)
    # the refusal does not consume the suspension
    assert machine.resume(max_steps=None).value == _compile(LOOP).run().value


def test_second_run_resets_run_state():
    compiled = _compile(LOOP)
    for engine in ENGINES:
        machine = Machine(compiled.vm_program, engine=engine)
        first = machine.run()
        second = machine.run()
        assert second.value == first.value
        assert second.steps == first.steps
        assert second.opcode_counts == first.opcode_counts


# ----------------------------------------------------------------------
# deadline budget
# ----------------------------------------------------------------------


def test_deadline_trips_and_resumes():
    clean = _compile(LOOP).run()
    for label, machine in _machines(LOOP, deadline_seconds=0.0):
        with pytest.raises(DeadlineExceeded) as excinfo:
            machine.run()
        error = excinfo.value
        assert error.budget == "deadline", label
        assert error.deadline_seconds == 0.0
        assert error.elapsed_seconds >= 0.0
        assert machine.last_trap.kind == "deadline"
        assert machine.last_trap.resumable
        # deadlines are only exact to the periodic check interval
        assert machine.steps <= clean.steps + BUDGET_CHECK_INTERVAL, label
        result = machine.resume(deadline_seconds=None)
        assert result.value == clean.value, label
        assert result.steps == clean.steps, label


def test_injected_deadline_is_exact_and_resumable():
    clean = _compile(LOOP).run()
    compiled = _compile(LOOP)
    for engine in ENGINES:
        machine = Machine(compiled.vm_program, engine=engine)
        machine._injected_deadline_step = 4321
        with pytest.raises(DeadlineExceeded, match="injected deadline"):
            machine.run()
        assert machine.steps == 4322, engine
        result = machine.resume()
        assert result.value == clean.value, engine
        assert result.steps == clean.steps, engine


# ----------------------------------------------------------------------
# allocation budget
# ----------------------------------------------------------------------


def test_alloc_budget_trips_and_resumes():
    clean = _compile(ALLOC_LOOP).run()
    clean_value = decode(clean)
    for label, machine in _machines(ALLOC_LOOP, max_alloc_words=2000):
        with pytest.raises(AllocBudgetExceeded) as excinfo:
            machine.run()
        error = excinfo.value
        assert error.budget == "alloc", label
        assert error.max_alloc_words == 2000
        assert error.words_allocated > 2000, label
        assert machine.last_trap.kind == "alloc"
        assert machine.last_trap.resumable
        result = machine.resume(max_alloc_words=None)
        assert decode(result) == clean_value, label
        assert result.steps == clean.steps, label


# ----------------------------------------------------------------------
# reset(): one-call re-arm for machine reuse (the pool entry point)
# ----------------------------------------------------------------------


def test_reset_rearms_budgets_and_clears_trap_state():
    clean = _compile(LOOP).run()
    compiled = _compile(LOOP)
    for engine in ENGINES:
        machine = Machine(compiled.vm_program, max_steps=1000, engine=engine)
        with pytest.raises(StepBudgetExceeded):
            machine.run()
        assert machine.last_trap is not None
        # one call: budgets lifted, trap + suspension state cleared
        machine.reset(budget=Budget())
        assert machine.last_trap is None
        result = machine.run()
        assert result.value == clean.value, engine
        assert result.steps == clean.steps, engine
        # and re-arm with a new budget: it trips again, exactly
        machine.reset(budget=Budget(max_steps=500))
        with pytest.raises(StepBudgetExceeded):
            machine.run()
        assert machine.steps == 501, engine


def test_reset_replaces_input_text():
    compiled = _compile("(read-char)")
    machine = Machine(compiled.vm_program, input_text="a")
    first = decode(machine.run())
    machine.reset(input_text="z")
    second = decode(machine.run())
    assert (str(first), str(second)) == (r"#\a", r"#\z")


def test_run_slice_chain_matches_uninterrupted_run():
    clean = _compile(LOOP).run()
    compiled = _compile(LOOP)
    for engine in ENGINES:
        machine = Machine(compiled.vm_program, engine=engine)
        chunks = 0
        result = machine.run_slice(700)
        while result is None:
            chunks += 1
            result = machine.run_slice(700)
        assert chunks > 1, engine
        assert result.value == clean.value, engine
        assert result.steps == clean.steps, engine
        assert result.opcode_counts == clean.opcode_counts, engine


def test_run_slice_rejects_nonpositive_budget():
    machine = Machine(_compile(LOOP).vm_program)
    with pytest.raises(VMError, match="positive budget"):
        machine.run_slice(0)


# ----------------------------------------------------------------------
# TrapInfo.to_json: the stable machine-readable fault payload
# ----------------------------------------------------------------------


def test_trap_info_to_json_payload():
    import json

    for label, machine in _machines(LOOP, max_steps=1000):
        with pytest.raises(StepBudgetExceeded):
            machine.run()
        payload = machine.last_trap.to_json()
        assert payload["kind"] == "steps"
        assert payload["steps"] == 1001
        assert payload["resumable"] is True
        assert payload["words_allocated"] >= 0
        assert payload["deadline_remaining_seconds"] is None
        assert payload["engine"]
        json.dumps(payload)  # every field is a JSON scalar


def test_trap_info_reports_deadline_remaining():
    for label, machine in _machines(LOOP, deadline_seconds=0.0):
        with pytest.raises(DeadlineExceeded):
            machine.run()
        payload = machine.last_trap.to_json()
        assert payload["kind"] == "deadline"
        # the deadline itself tripped: no time was left on the clock
        assert payload["deadline_remaining_seconds"] is not None
        assert payload["deadline_remaining_seconds"] <= 0.0, label


# ----------------------------------------------------------------------
# the Budget record and API plumbing
# ----------------------------------------------------------------------


def test_budget_record_equivalent_to_scalars():
    compiled = _compile(LOOP)
    budget = Budget(max_steps=1000, deadline_seconds=None,
                    max_alloc_words=None)
    assert not budget.unlimited
    assert Budget(None, None, None).unlimited
    machine = Machine(compiled.vm_program, budget=budget)
    with pytest.raises(StepBudgetExceeded):
        machine.run()
    assert machine.steps == 1001


def test_budgets_force_instruction_counting():
    compiled = _compile(LOOP)
    machine = Machine(
        compiled.vm_program, count_instructions=False, max_steps=1000
    )
    assert machine.count_instructions
    with pytest.raises(StepBudgetExceeded):
        machine.run()


def test_api_run_accepts_budget_kwargs():
    compiled = _compile(LOOP)
    with pytest.raises(StepBudgetExceeded):
        compiled.run(max_steps=1000)
    with pytest.raises(DeadlineExceeded):
        compiled.run(deadline_seconds=0.0)
    result = compiled.run(max_steps=10_000_000)
    assert decode(result) == 2000
