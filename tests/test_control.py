"""Integration tests for control flow, closures, assignment, and the
derived forms, end-to-end through the VM."""

import pytest

from repro.sexpr import NIL, Symbol, from_list

from .conftest import evaluate


# ----------------------------------------------------------------------
# closures and scoping
# ----------------------------------------------------------------------


def test_closure_captures_value():
    assert evaluate("(((lambda (x) (lambda (y) (+ x y))) 10) 5)") == 15


def test_closure_captures_are_per_instance():
    source = """
    (define (make-adder n) (lambda (x) (+ x n)))
    (define add3 (make-adder 3))
    (define add10 (make-adder 10))
    (list (add3 1) (add10 1))
    """
    assert evaluate(source) == from_list([4, 11])


def test_closures_share_mutable_variable():
    source = """
    (define (make-counter)
      (let ((n 0))
        (cons (lambda () (set! n (+ n 1)) n)
              (lambda () n))))
    (define c (make-counter))
    (define bump (car c))
    (define peek (cdr c))
    (bump) (bump)
    (peek)
    """
    assert evaluate(source) == 2


def test_set_on_captured_parameter():
    source = """
    (define (f x)
      (let ((get (lambda () x)))
        (set! x 99)
        (get)))
    (f 1)
    """
    assert evaluate(source) == 99


def test_deep_lexical_nesting():
    source = """
    (define (f a)
      (lambda (b)
        (lambda (c)
          (lambda (d) (+ (+ a b) (+ c d))))))
    ((((f 1) 2) 3) 4)
    """
    assert evaluate(source) == 10


# ----------------------------------------------------------------------
# recursion
# ----------------------------------------------------------------------


def test_letrec_mutual_recursion():
    source = """
    (letrec ((even? (lambda (n) (if (= n 0) #t (odd? (- n 1)))))
             (odd? (lambda (n) (if (= n 0) #f (even? (- n 1))))))
      (list (even? 10) (odd? 10)))
    """
    assert evaluate(source) == from_list([True, False])


def test_named_let_loop():
    assert (
        evaluate("(let loop ((i 0) (acc 1)) (if (= i 5) acc (loop (+ i 1) (* acc 2))))")
        == 32
    )


def test_do_loop():
    assert evaluate("(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 5) s))") == 10


def test_proper_tail_calls_run_in_constant_stack():
    source = """
    (define (count n) (if (= n 0) 'done (count (- n 1))))
    (count 200000)
    """
    assert evaluate(source) == Symbol("done")


def test_mutual_tail_recursion_constant_stack():
    source = """
    (define (ping n) (if (= n 0) 'ping (pong (- n 1))))
    (define (pong n) (if (= n 0) 'pong (ping (- n 1))))
    (ping 100001)
    """
    assert evaluate(source) == Symbol("pong")


def test_ackermann_small():
    source = """
    (define (ack m n)
      (cond ((= m 0) (+ n 1))
            ((= n 0) (ack (- m 1) 1))
            (else (ack (- m 1) (ack m (- n 1))))))
    (ack 2 3)
    """
    assert evaluate(source) == 9


# ----------------------------------------------------------------------
# derived forms end-to-end
# ----------------------------------------------------------------------


def test_cond_arrow_end_to_end():
    assert (
        evaluate("(cond ((assq 'b '((a 1) (b 2))) => cadr) (else 'nope))") == 2
    )


def test_case_end_to_end():
    source = "(case (* 2 3) ((2 3 5 7) 'prime) ((1 4 6 8 9) 'composite))"
    assert evaluate(source) == Symbol("composite")


def test_and_or_values():
    assert evaluate("(and 1 2 'c)") == Symbol("c")
    assert evaluate("(and 1 #f 'c)") is False
    assert evaluate("(or #f #f 3)") == 3
    assert evaluate("(or #f)") is False
    assert evaluate("(and)") is True


def test_when_unless():
    assert evaluate("(when (< 1 2) 'yes)") == Symbol("yes")
    assert evaluate("(unless (< 1 2) 'yes)") is not Symbol("yes")


def test_quasiquote_end_to_end():
    assert evaluate("`(1 ,(+ 1 1) ,@(list 3 4))") == from_list([1, 2, 3, 4])
    assert evaluate("`#(a ,(+ 1 1))") == [Symbol("a"), 2]
    assert evaluate("(let ((x 5)) `(a . ,x))").cdr == 5


def test_user_macro_end_to_end():
    source = """
    (define-syntax while
      (syntax-rules ()
        ((_ test body ...)
         (let loop ()
           (when test body ... (loop))))))
    (define i 0)
    (define acc '())
    (while (< i 3)
      (set! acc (cons i acc))
      (set! i (+ i 1)))
    acc
    """
    assert evaluate(source) == from_list([2, 1, 0])


def test_shadowing_of_library_procedures():
    assert evaluate("(let ((car cdr)) (car '(1 2)))") == from_list([2])
    assert evaluate("(define (car x) 'mine) (car '(1 2))") == Symbol("mine")


def test_internal_defines_end_to_end():
    source = """
    (define (f n)
      (define (square x) (* x x))
      (define four (square 2))
      (+ n four))
    (f 10)
    """
    assert evaluate(source) == 14


def test_begin_sequencing_order():
    source = """
    (define trace '())
    (define (note x) (set! trace (cons x trace)) x)
    (begin (note 1) (note 2) (note 3))
    (reverse trace)
    """
    assert evaluate(source) == from_list([1, 2, 3])


def test_argument_evaluation_is_left_to_right():
    source = """
    (define trace '())
    (define (note x) (set! trace (cons x trace)) x)
    ((lambda (a b c) (reverse trace)) (note 1) (note 2) (note 3))
    """
    assert evaluate(source) == from_list([1, 2, 3])


# ----------------------------------------------------------------------
# top-level semantics
# ----------------------------------------------------------------------


def test_toplevel_redefinition_wins():
    assert evaluate("(define x 1) (define x 2) x") == 2


def test_toplevel_forward_reference_in_lambda():
    assert evaluate("(define (f) (g)) (define (g) 7) (f)") == 7


def test_set_on_global():
    assert evaluate("(define x 1) (set! x 41) (+ x 1)") == 42


def test_empty_program_runs():
    # Value is whatever the prelude's last form produced; it must run.
    from repro import run_source

    from .conftest import UNOPT

    result = run_source("", UNOPT)
    assert result.steps > 0
