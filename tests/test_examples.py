"""Every example script must run to completion and produce its
advertised output (runnable documentation stays runnable)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

CASES = [
    ("quickstart.py", ["the first squares", "LD 1 0 7", "fib(15)"]),
    ("custom_reptype.py", ["#<point>", "celsius", "(eq? (rep-accessor pair-rep 0) car) = #t"]),
    ("compiler_tour.py", ["generated machine code", "LD", "SAFE mode"]),
    ("symbolic_differentiation.py", ["f'", "optimized"]),
    ("alternative_tagging.py", ["(0 1 4 9 16 25 36 49 64 81)", "LD 1 0 15"]),
    ("metacircular.py", ["(1 2 6 24 120)", "3628800"]),
    ("lazy_streams.py", ["first 15 primes", "fib(60) via memoization: 1548008755920"]),
]


@pytest.mark.parametrize("script,expectations", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expectations):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for expectation in expectations:
        assert expectation in proc.stdout, (
            f"{script}: missing {expectation!r} in output:\n{proc.stdout[-2000:]}"
        )
