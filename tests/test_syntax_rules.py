"""Unit tests for syntax-rules macros."""

import pytest

from repro.errors import ExpandError
from repro.expand import SyntaxRules
from repro.expand.expander import expand_program
from repro.ir import Call, GlobalRef, If, Lambda, Let, LocalSet
from repro.sexpr import read, read_all, to_write


def make(rules_source):
    return SyntaxRules.parse(read(rules_source), "m")


def expand_use(rules_source, use_source):
    return to_write(make(rules_source).expand(read(use_source)))


# ----------------------------------------------------------------------
# basic pattern matching
# ----------------------------------------------------------------------


def test_fixed_pattern():
    assert expand_use("(syntax-rules () ((_ a b) (b a)))", "(m 1 2)") == "(2 1)"


def test_wildcard_matches_anything():
    assert expand_use("(syntax-rules () ((_ _ b) b))", "(m (x y) 3)") == "3"


def test_keyword_position_ignored():
    # The pattern's keyword slot matches regardless of the actual name.
    assert expand_use("(syntax-rules () ((anything a) a))", "(m 5)") == "5"


def test_multiple_rules_first_match_wins():
    rules = "(syntax-rules () ((_ a) (one a)) ((_ a b) (two a b)))"
    assert expand_use(rules, "(m 1)") == "(one 1)"
    assert expand_use(rules, "(m 1 2)") == "(two 1 2)"


def test_no_matching_rule_is_error():
    with pytest.raises(ExpandError):
        make("(syntax-rules () ((_ a) a))").expand(read("(m 1 2)"))


def test_literal_identifiers_must_match():
    rules = "(syntax-rules (to) ((_ a to b) (pair a b)))"
    assert expand_use(rules, "(m 1 to 2)") == "(pair 1 2)"
    with pytest.raises(ExpandError):
        make(rules).expand(read("(m 1 from 2)"))


def test_constant_patterns():
    rules = '(syntax-rules () ((_ 1) one) ((_ "s") string) ((_ #t) true))'
    assert expand_use(rules, "(m 1)") == "one"
    assert expand_use(rules, '(m "s")') == "string"
    assert expand_use(rules, "(m #t)") == "true"


def test_dotted_pattern():
    rules = "(syntax-rules () ((_ (a . b)) (pair a b)))"
    assert expand_use(rules, "(m (1 2 3))") == "(pair 1 (2 3))"


def test_nested_patterns():
    rules = "(syntax-rules () ((_ ((a b) c)) (a b c)))"
    assert expand_use(rules, "(m ((1 2) 3))") == "(1 2 3)"


# ----------------------------------------------------------------------
# ellipsis
# ----------------------------------------------------------------------


def test_simple_ellipsis():
    rules = "(syntax-rules () ((_ a ...) (list a ...)))"
    assert expand_use(rules, "(m 1 2 3)") == "(list 1 2 3)"
    assert expand_use(rules, "(m)") == "(list)"


def test_ellipsis_with_trailing_fixed():
    rules = "(syntax-rules () ((_ a ... z) (z a ...)))"
    assert expand_use(rules, "(m 1 2 3)") == "(3 1 2)"


def test_structured_ellipsis():
    rules = "(syntax-rules () ((_ (k v) ...) (keys (k ...) (v ...))))"
    assert expand_use(rules, "(m (a 1) (b 2))") == "(keys (a b) (1 2))"


def test_nested_ellipsis():
    rules = "(syntax-rules () ((_ (a ...) ...) (flat a ... ...)))"
    assert expand_use(rules, "(m (1 2) (3))") == "(flat 1 2 3)"


def test_ellipsis_template_reuses_fixed_vars():
    rules = "(syntax-rules () ((_ x (y ...)) ((x y) ...)))"
    assert expand_use(rules, "(m 0 (1 2))") == "((0 1) (0 2))"


def test_ellipsis_escape():
    rules = "(syntax-rules () ((_ a) (a (... ...))))"
    assert expand_use(rules, "(m foo)") == "(foo ...)"


def test_mismatched_ellipsis_counts_error():
    rules = "(syntax-rules () ((_ (a ...) (b ...)) ((a b) ...)))"
    with pytest.raises(ExpandError):
        make(rules).expand(read("(m (1 2) (3))"))


def test_duplicate_pattern_variable_rejected():
    with pytest.raises(ExpandError):
        make("(syntax-rules () ((_ a a) a))")


def test_wrong_depth_use_rejected():
    rules = "(syntax-rules () ((_ a ...) a))"
    with pytest.raises(ExpandError):
        make(rules).expand(read("(m 1 2)"))


# ----------------------------------------------------------------------
# integration with the expander
# ----------------------------------------------------------------------


def expand_last(source):
    program = expand_program(read_all(source))
    return program.forms[-1]


def test_macro_defined_and_used():
    node = expand_last(
        """
        (define-syntax my-if2
          (syntax-rules ()
            ((_ c a b) (if c a b))))
        (my-if2 x 1 2)
        """
    )
    assert isinstance(node, If)


def test_macro_expansion_is_recursive():
    node = expand_last(
        """
        (define-syntax my-or
          (syntax-rules ()
            ((_) #f)
            ((_ e) e)
            ((_ e r ...) (let ((t e)) (if t t (my-or r ...))))))
        (my-or a b c)
        """
    )
    assert isinstance(node, Let)


def test_let_syntax_scoping():
    node = expand_last(
        """
        (let-syntax ((double (syntax-rules () ((_ x) (x x)))))
          (double f))
        """
    )
    assert isinstance(node, Call)
    # outside the let-syntax the name is an ordinary variable again
    node = expand_last("(define-syntax q (syntax-rules () ((_) 1))) double")
    assert isinstance(node, GlobalRef)


def test_macro_generating_define():
    program = expand_program(
        read_all(
            """
            (define-syntax def-two
              (syntax-rules ()
                ((_ a b) (begin (define a 1) (define b 2)))))
            (def-two p q)
            """
        )
    )
    assert "p" in program.globals and "q" in program.globals


def test_macro_generating_internal_define():
    node = expand_last(
        """
        (define-syntax defx
          (syntax-rules () ((_ v) (define v 1))))
        (lambda () (defx x) x)
        """
    )
    assert isinstance(node, Lambda)


def test_swap_macro_produces_sets():
    node = expand_last(
        """
        (define-syntax swap!
          (syntax-rules ()
            ((_ a b) (let ((tmp a)) (set! a b) (set! b tmp)))))
        (lambda (p q) (swap! p q))
        """
    )
    let = node.body
    assert isinstance(let, Let)
    sets = let.body.exprs
    assert all(isinstance(s, LocalSet) for s in sets)


def test_recursive_macro_termination_guard():
    with pytest.raises(ExpandError):
        expand_last(
            """
            (define-syntax loopy
              (syntax-rules () ((_ a) (loopy a))))
            (lambda () (loopy 1) 2)
            """
        )


def test_vector_pattern_and_template():
    rules = "(syntax-rules () ((_ #(a b)) (a b)))"
    assert expand_use(rules, "(m #(1 2))") == "(1 2)"
    rules = "(syntax-rules () ((_ a ...) #(a ...)))"
    assert expand_use(rules, "(m 1 2)") == "#(1 2)"
