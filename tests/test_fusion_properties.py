"""Property-based tests for superinstruction fusion.

Random legal instruction sequences are compiled twice — verbatim, and
through :func:`repro.backend.peephole.fuse_superinstructions` — and
executed on both engines.  Fusion must preserve machine state
register-for-register (observed through an in-program register
checksum), must preserve the decomposed dynamic instruction counts, and
must never fuse across a branch label: a branch landing between two
fusable instructions makes the pair illegal, because entering at the
second half of a fused pair is impossible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.peephole import branch_target_index, fuse_superinstructions
from repro.vm import isa
from repro.vm.machine import Machine

NREGS = 6
WORD = (1 << 64) - 1

_REG = st.integers(min_value=0, max_value=NREGS - 1)
_IMM = st.one_of(
    st.integers(min_value=0, max_value=255),
    st.sampled_from([0, 1, 7, 8, 63, 64, 65, (1 << 63), WORD, WORD - 7]),
)

#: (opcode, operand pattern) — r = register, i = immediate.  Only ops
#: whose semantics are register/immediate-pure, so any operand draw is a
#: legal program (no heap addresses, no calls).
_VALUE_OPS = [
    (isa.LDC, "ri"),
    (isa.MOV, "rr"),
    (isa.ADD, "rrr"),
    (isa.ADDI, "rri"),
    (isa.SUB, "rrr"),
    (isa.SUBI, "rri"),
    (isa.MULI, "rri"),
    (isa.AND, "rrr"),
    (isa.ANDI, "rri"),
    (isa.OR, "rrr"),
    (isa.ORI, "rri"),
    (isa.XOR, "rrr"),
    (isa.XORI, "rri"),
    (isa.NOT, "rr"),
    (isa.SHL, "rrr"),
    (isa.SHLI, "rri"),
    (isa.SHR, "rrr"),
    (isa.SHRI, "rri"),
    (isa.SAR, "rrr"),
    (isa.SARI, "rri"),
    (isa.CMPEQ, "rrr"),
    (isa.CMPEQI, "rri"),
    (isa.CMPNE, "rrr"),
    (isa.CMPLT, "rrr"),
    (isa.CMPLTI, "rri"),
    (isa.CMPULT, "rrr"),
    (isa.CMPNZ, "rr"),
]

#: conditional branches: operands then a forward target (filled in later)
_BRANCH_OPS = [
    (isa.JT, "r"),
    (isa.JF, "r"),
    (isa.JEQ, "rr"),
    (isa.JNE, "rr"),
    (isa.JEQI, "ri"),
    (isa.JNEI, "ri"),
    (isa.JLT, "rr"),
    (isa.JUGE, "rr"),
]


_PATTERN = {op: pattern for op, pattern in _VALUE_OPS}
_PATTERN.update({op: pattern + "t" for op, pattern in _BRANCH_OPS})

#: fusion-table pairs drawable from the register-only op pool, so the
#: generator can emit guaranteed-fusable adjacencies instead of waiting
#: for them to happen by chance
_DRAWABLE_PAIRS = [
    (op1, op2)
    for (op1, op2) in isa.FUSION_TABLE
    if op1 in _PATTERN and op2 in _PATTERN
]


@st.composite
def instruction_bodies(draw):
    """A body with only *forward* branches (terminates), seeded with
    known-fusable adjacent pairs about a third of the time."""
    length = draw(st.integers(min_value=2, max_value=40))
    body = []
    while len(body) < length:
        index = len(body)
        kind = draw(st.integers(0, 5))
        if kind <= 1 and index + 1 < length:
            ops = draw(st.sampled_from(_DRAWABLE_PAIRS))
        elif kind == 2:
            ops = (draw(st.sampled_from(_BRANCH_OPS))[0],)
        else:
            ops = (draw(st.sampled_from(_VALUE_OPS))[0],)
        for op in ops:
            operands = []
            for slot in _PATTERN[op]:
                if slot == "r":
                    operands.append(draw(_REG))
                elif slot == "i":
                    operands.append(draw(_IMM))
                else:  # forward branch target
                    operands.append(
                        draw(
                            st.integers(
                                min_value=len(body) + 1, max_value=length
                            )
                        )
                    )
            body.append([op, *operands])
    return body


def _make_code(instructions):
    code = isa.CodeObject(name="main", nparams=0, has_rest=False, nfree=0)
    code.nregs = NREGS
    code.instructions = [list(ins) for ins in instructions]
    return code


def _checksum_suffix():
    """r0 <- fold of every register through a degenerate polynomial hash,
    so any single-register difference changes the halt value."""
    out = []
    for reg in range(1, NREGS):
        out.append([isa.MULI, 0, 0, 1_000_003])
        out.append([isa.ADD, 0, 0, reg])
    out.append([isa.HALT, 0])
    return out


def _run(code, engine):
    program = isa.VMProgram([code], [])
    machine = Machine(program, engine=engine)
    result = machine.run()
    return result


def _build_pair(body):
    """(unfused code, fused code, pairs fused) for one generated body.

    Branch targets in the body point at body indices; the checksum
    suffix is appended *before* fusion so the fusion pass remaps every
    target itself.
    """
    full = body + _checksum_suffix()
    unfused = _make_code(full)
    fused = _make_code(full)
    pairs = fuse_superinstructions(fused)
    return unfused, fused, pairs


@settings(max_examples=120, deadline=None)
@given(instruction_bodies())
def test_fusion_preserves_state_and_counts(body):
    unfused, fused, pairs = _build_pair(body)
    results = {}
    for label, code in (("unfused", unfused), ("fused", fused)):
        for engine in ("naive", "threaded", "compiled"):
            results[(label, engine)] = _run(code, engine)
    reference = results[("unfused", "naive")]
    for key, result in results.items():
        assert result.value == reference.value, key
        assert result.steps == reference.steps, key
        assert result.opcode_counts == reference.opcode_counts, key
    if pairs:
        # executed fused pairs each save exactly one dispatch
        for engine in ("naive", "threaded", "compiled"):
            fused_result = results[("fused", engine)]
            assert fused_result.dispatches <= fused_result.steps


@settings(max_examples=120, deadline=None)
@given(instruction_bodies())
def test_fusion_never_spans_branch_targets(body):
    unfused, fused, _pairs = _build_pair(body)
    # Every branch target in the fused code must be a real instruction
    # index: a pair whose second half was a branch target may not fuse,
    # so no remapped target can land "inside" a fused instruction.
    targets = set()
    for ins in fused.instructions:
        for half in isa.decompose(ins):
            position = branch_target_index(half[0])
            if position is not None:
                targets.add(half[position])
    for target in targets:
        assert 0 <= target <= len(fused.instructions), (
            "branch target fell outside the remapped code",
            target,
        )
    # static decomposed length is invariant under fusion
    assert (
        sum(isa.instruction_width(ins) for ins in fused.instructions)
        == len(unfused.instructions)
    )


def test_branch_into_pair_blocks_fusion():
    # JEQI branches straight at the ADDI: the (ANDI, ADDI) pair at
    # indices 2-3 would swallow a branch target and must not fuse, while
    # the identical pair at indices 4-5 (no label) must fuse.
    assert (isa.ANDI, isa.ADDI) in isa.FUSION_TABLE
    body = [
        [isa.LDC, 0, 9],
        [isa.JEQI, 0, 9, 3],   # target: the ADDI below
        [isa.ANDI, 1, 0, 7],   # index 2: would-be first half
        [isa.ADDI, 1, 1, 1],   # index 3: branch target — blocks fusion
        [isa.ANDI, 2, 0, 7],   # index 4: identical, no label
        [isa.ADDI, 2, 2, 1],   # index 5
    ]
    unfused, fused, pairs = _build_pair(body)
    assert pairs >= 1
    fused_ops = [ins[0] for ins in fused.instructions]
    fused_op = isa.FUSION_TABLE[(isa.ANDI, isa.ADDI)]
    # the labelled pair survives unfused; the unlabelled one fuses
    assert isa.ANDI in fused_ops and isa.ADDI in fused_ops
    assert fused_op in fused_ops
    for engine in ("naive", "threaded", "compiled"):
        assert _run(fused, engine).value == _run(unfused, engine).value


def test_first_instruction_of_pair_may_be_branch_target():
    # A branch landing on the *first* half of a fused pair is legal —
    # execution enters the pair at its start.  The loop below jumps back
    # to the ANDI/ADDI pair three times.
    body = [
        [isa.LDC, 0, 0],
        [isa.LDC, 1, 0],
        [isa.ANDI, 2, 0, 7],    # index 2: loop head, branch target
        [isa.ADDI, 1, 1, 5],
        [isa.ADDI, 0, 0, 1],
        [isa.JNEI, 0, 3, 2],    # loop until r0 == 3
    ]
    unfused, fused, pairs = _build_pair(body)
    assert pairs >= 1
    for engine in ("naive", "threaded", "compiled"):
        u = _run(unfused, engine)
        f = _run(fused, engine)
        assert u.value == f.value
        assert u.opcode_counts == f.opcode_counts
        assert f.dispatches < f.steps  # the loop executed fused pairs


def test_decompose_roundtrip_every_table_entry():
    for (op1, op2), fop in isa.FUSION_TABLE.items():
        n1 = isa.OPERAND_COUNT[op1]
        n2 = isa.OPERAND_COUNT[op2]
        ins = [fop, *range(1, n1 + n2 + 1)]
        first, second = isa.decompose(ins)
        assert first == [op1, *range(1, n1 + 1)]
        assert second == [op2, *range(n1 + 1, n1 + n2 + 1)]
        assert isa.instruction_width(ins) == 2
        assert isa.opcode_name(fop) == (
            f"{isa.opcode_name(op1)}.{isa.opcode_name(op2)}"
        )
