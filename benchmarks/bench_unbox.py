"""Unboxing/check-elision smoke gate — writes ``BENCH_unbox.json``.

Counts dynamic VM instructions for every Table-2 workload with the
interprocedural ``unbox`` pass on (the default) and off.  The numbers
are deterministic instruction counts, not wall time, so a single rep is
exact; ``--quick`` exists only for interface symmetry with the other
perf-smoke gates.

Run as a script::

    python benchmarks/bench_unbox.py              # report only
    python benchmarks/bench_unbox.py --check      # exit 1 on regression

``--check`` enforces the two acceptance gates: the pass must not raise
the dynamic count on any workload, and it must strictly lower it on at
least half of them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    from workloads import ALL_WORKLOADS
else:
    from .workloads import ALL_WORKLOADS

from repro import CompileOptions, OptimizerOptions, compile_source, decode

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_unbox.json")


def measure() -> dict:
    """Dynamic instruction counts with/without ``unbox``, as a report."""
    workloads = {}
    improved = 0
    for name, source, expected in ALL_WORKLOADS:
        on = compile_source(source, CompileOptions()).run()
        off = compile_source(
            source, CompileOptions(optimizer=OptimizerOptions().without("unbox"))
        ).run()
        assert decode(on) == expected, (name, "unbox on")
        assert decode(off) == expected, (name, "unbox off")
        if on.steps < off.steps:
            improved += 1
        workloads[name] = {
            "steps_on": on.steps,
            "steps_off": off.steps,
            "saved": off.steps - on.steps,
            "ratio": round(on.steps / off.steps, 4),
        }
    return {
        "pass": "unbox",
        "python": sys.version.split()[0],
        "improved": improved,
        "total": len(ALL_WORKLOADS),
        "workloads": workloads,
    }


def check(report: dict) -> list[str]:
    """Acceptance failures (empty == pass)."""
    failures = []
    for name, entry in report["workloads"].items():
        if entry["steps_on"] > entry["steps_off"]:
            failures.append(
                f"{name}: unbox regressed "
                f"{entry['steps_off']} -> {entry['steps_on']}"
            )
    if report["improved"] * 2 < report["total"]:
        failures.append(
            f"unbox strictly improved only {report['improved']} of "
            f"{report['total']} workloads (need at least half)"
        )
    return failures


def render(report: dict) -> str:
    lines = [
        f"{'workload':10s} {'unbox on':>10s} {'unbox off':>10s} "
        f"{'saved':>8s} {'ratio':>7s}"
    ]
    for name, entry in report["workloads"].items():
        lines.append(
            f"{name:10s} {entry['steps_on']:10d} {entry['steps_off']:10d} "
            f"{entry['saved']:8d} {entry['ratio']:6.3f}x"
        )
    lines.append(
        f"strict improvements: {report['improved']}/{report['total']}"
        " (gate: at least half, no regressions)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="accepted for symmetry with the other smoke gates (counts "
        "are deterministic, so there is nothing to shorten)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if unbox regresses any workload or improves fewer "
        "than half",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="JSON report path (default: BENCH_unbox.json at the repo root)",
    )
    args = parser.parse_args(argv)

    report = measure()
    print(render(report))
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(args.output)}")

    if args.check:
        failures = check(report)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


# ----------------------------------------------------------------------
# pytest entry point (slow: excluded from tier-1 — tests/test_unbox.py
# covers the same gates inside tier-1 on the same workloads)
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script use without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.slow
    def test_unbox_gate():
        report = measure()
        print(render(report))
        failures = check(report)
        assert not failures, failures


if __name__ == "__main__":
    sys.exit(main())
