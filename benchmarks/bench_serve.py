"""Execution-service load + chaos benchmark — writes ``BENCH_serve.json``.

Two sections, both driven through the real service stack
(:mod:`repro.serve`) via the smoke harness:

    load   — ≥ 500 concurrent tenants, one job each, submitted at once;
             measures req/s and p50/p99 latency with the compile cache
             pre-warmed so the numbers reflect scheduling, not the
             one-off whole-program compile of each distinct source.
    chaos  — a smaller population with the fault-injected cohort and a
             hostile tenant; the section's value is its audit, not its
             throughput.

Run as a script::

    python benchmarks/bench_serve.py              # full (500 tenants)
    python benchmarks/bench_serve.py --quick      # CI smoke (fewer jobs)
    python benchmarks/bench_serve.py --check      # exit 1 on gate failure

or through pytest (excluded from tier-1 by the ``slow`` marker)::

    pytest benchmarks/bench_serve.py -m slow --no-header

``--check`` enforces the acceptance gates: the load section must
complete every job with zero lost/duplicated results and p99 latency
under the ceiling, and the chaos section must pass the full service
contract (no lost jobs, no duplicated results, no wrong answers, no
heap-conservation violations, every fault-injected job completed).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.serve import ServeConfig, TenantQuota, run_smoke, smoke_ok

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_serve.json")

#: the acceptance floor: the service must sustain at least this many
#: concurrent tenants in the (full) load section
TENANT_FLOOR = 500

#: "bounded p99": every load-section job must finish within this much
#: wall clock of its submission (round-robin means p99 ≈ makespan)
P99_CEILING_MS = 120_000.0


def _config(jobs: int, slice_steps: int) -> ServeConfig:
    return ServeConfig(
        pool_size=8,
        heap_words=1 << 16,
        slice_steps=slice_steps,
        queue_limit=jobs + 64,
        quota=TenantQuota(max_in_flight=jobs + 1),
    )


def _load_section(jobs: int, tenants: int) -> dict:
    report = run_smoke(
        jobs=jobs,
        tenants=tenants,
        chaos=False,
        hostile=False,
        config=_config(jobs, slice_steps=2000),
        warmup=True,
    )
    return {
        "tenants": tenants,
        "jobs": jobs,
        "completed": report["completed"],
        "failed": report["failed"],
        "rejected": report["rejected"],
        "lost": report["lost"],
        "duplicated": report["duplicated"],
        "wrong_values": report["wrong_values"],
        "conservation_violations": report["conservation_violations"],
        "elapsed_seconds": report["elapsed_seconds"],
        "req_per_sec": report["req_per_sec"],
        "p50_ms": report["p50_ms"],
        "p99_ms": report["p99_ms"],
        "p99_ceiling_ms": P99_CEILING_MS,
        "slices": report["slices"],
        "steps_executed": report["steps_executed"],
        "compiles": report["compiles"],
    }


def _chaos_section(jobs: int, tenants: int) -> dict:
    report = run_smoke(
        jobs=jobs,
        tenants=tenants,
        chaos=True,
        hostile=True,
        config=_config(jobs, slice_steps=500),
        warmup=True,
    )
    return {
        "tenants": tenants,
        "jobs": jobs,
        "hostile_jobs": report["hostile_jobs"],
        "completed": report["completed"],
        "failed": report["failed"],
        "lost": report["lost"],
        "duplicated": report["duplicated"],
        "wrong_values": report["wrong_values"],
        "conservation_violations": report["conservation_violations"],
        "chaos": report["chaos"],
        "hostile": report["hostile"],
        "elapsed_seconds": report["elapsed_seconds"],
        "ok": smoke_ok(report),
    }


def measure(quick: bool = False) -> dict:
    load_jobs = 120 if quick else TENANT_FLOOR
    chaos_jobs = 40 if quick else 150
    load = _load_section(jobs=load_jobs, tenants=load_jobs)
    chaos = _chaos_section(jobs=chaos_jobs, tenants=20)
    return {
        "python": sys.version.split()[0],
        "quick": quick,
        "tenant_floor": TENANT_FLOOR,
        "load": load,
        "chaos": chaos,
    }


def check(report: dict) -> list[str]:
    """Acceptance failures (empty == pass)."""
    failures = []
    load = report["load"]
    if not report["quick"] and load["tenants"] < TENANT_FLOOR:
        failures.append(
            f"load: only {load['tenants']} tenants (floor {TENANT_FLOOR})"
        )
    if load["completed"] != load["jobs"]:
        failures.append(
            f"load: {load['completed']}/{load['jobs']} jobs completed"
        )
    for key in ("lost", "duplicated", "wrong_values",
                "conservation_violations"):
        if load[key]:
            failures.append(f"load: {key} = {load[key]} (must be 0)")
    if load["p99_ms"] > P99_CEILING_MS:
        failures.append(
            f"load: p99 {load['p99_ms']:.0f} ms over the "
            f"{P99_CEILING_MS:.0f} ms ceiling"
        )
    chaos = report["chaos"]
    if not chaos["ok"]:
        failures.append("chaos: service contract gate failed")
    for key in ("lost", "duplicated", "wrong_values",
                "conservation_violations"):
        if chaos[key]:
            failures.append(f"chaos: {key} = {chaos[key]} (must be 0)")
    if chaos["chaos"]["incomplete"]:
        failures.append(
            f"chaos: {chaos['chaos']['incomplete']} fault-injected jobs "
            "never completed"
        )
    return failures


def render(report: dict) -> str:
    load = report["load"]
    chaos = report["chaos"]
    return "\n".join([
        f"load:  {load['jobs']} jobs / {load['tenants']} tenants in "
        f"{load['elapsed_seconds']:.1f}s — {load['req_per_sec']:.1f} req/s, "
        f"p50 {load['p50_ms']:.0f} ms, p99 {load['p99_ms']:.0f} ms "
        f"(ceiling {load['p99_ceiling_ms']:.0f} ms)",
        f"       {load['completed']} completed, {load['lost']} lost, "
        f"{load['duplicated']} duplicated, "
        f"{load['conservation_violations']} conservation violations",
        f"chaos: {chaos['jobs']} jobs (+{chaos['hostile_jobs']} hostile), "
        f"{chaos['chaos']['completed']}/{chaos['chaos']['jobs']} "
        f"fault-injected completed ({chaos['chaos']['retries']} retries), "
        f"breaker opened {chaos['hostile']['breaker_opened']}x",
        f"       lost {chaos['lost']}, duplicated {chaos['duplicated']}, "
        f"wrong {chaos['wrong_values']}, conservation violations "
        f"{chaos['conservation_violations']} — "
        f"{'OK' if chaos['ok'] else 'FAILED'}",
    ])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller populations (CI smoke)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any load or chaos acceptance gate fails",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="JSON report path (default: BENCH_serve.json at the repo root)",
    )
    args = parser.parse_args(argv)

    report = measure(quick=args.quick)
    print(render(report))
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(args.output)}")

    if args.check:
        failures = check(report)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


# ----------------------------------------------------------------------
# pytest entry point (slow: excluded from tier-1)
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script use without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.slow
    def test_serve_bench_gates():
        report = measure(quick=True)
        print(render(report))
        failures = check(report)
        assert not failures, failures


if __name__ == "__main__":
    sys.exit(main())
