"""Table 5 — static code size.

Does the abstraction cost code space?  Whole-program static instruction
counts (after global pruning) for the workloads, under O and B, plus the
unpruned size of the entire prelude under each configuration.
"""

from repro import CompileOptions, OptimizerOptions

from .harness import compiled, config_b, config_o, config_u, ratio, write_table
from .workloads import ALL_WORKLOADS


def test_table5_codesize(benchmark):
    def build():
        rows = []
        for name, source, _ in ALL_WORKLOADS:
            opt = compiled(source, config_o()).static_instruction_count()
            base = compiled(source, config_b()).static_instruction_count()
            unopt = compiled(source, config_u()).static_instruction_count()
            rows.append([name, unopt, opt, base, ratio(opt, base)])
        # whole-prelude sizes (nothing pruned)
        keep = OptimizerOptions(prune_globals=False)
        o_full = compiled(
            "'x", CompileOptions(optimizer=keep)
        ).static_instruction_count()
        b_full = compiled(
            "'x", CompileOptions(optimizer=keep, prelude="handcoded")
        ).static_instruction_count()
        rows.append(["<whole prelude>", "-", o_full, b_full, ratio(o_full, b_full)])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "table5_codesize.txt",
        "Table 5 — static code size (instructions, after pruning)",
        ["program", "U", "O", "B", "O/B"],
        rows,
    )
    for row in rows[:-1]:
        assert float(row[4]) <= 1.4, row  # abstraction is not a size blowup
