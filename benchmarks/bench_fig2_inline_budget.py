"""Figure 2 — inlining-budget sweep.

The size budget for multi-use inlining swept over a range; reports
dynamic instructions and total static code size.  Shape: a knee — small
budgets leave library calls in place, large budgets stop paying.
"""

from repro import CompileOptions, OptimizerOptions

from .harness import compiled, run_workload, write_table
from .workloads import DERIV, FIB, SORT

WORKLOADS = [FIB, SORT, DERIV]
BUDGETS = [0, 5, 10, 20, 40, 80, 160]


def budgeted(budget: int) -> CompileOptions:
    return CompileOptions(optimizer=OptimizerOptions(max_inline_size=budget))


def test_fig2_inline_budget(benchmark):
    def build():
        rows = []
        for budget in BUDGETS:
            options = budgeted(budget)
            row = [budget]
            size_total = 0
            for name, source, expected in WORKLOADS:
                result = run_workload(source, options, expected)
                row.append(result.steps)
                size_total += compiled(source, options).static_instruction_count()
            row.append(size_total)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "fig2_inline_budget.txt",
        "Figure 2 — dynamic instructions vs inline-size budget",
        ["budget"] + [w[0] for w in WORKLOADS] + ["static size (sum)"],
        rows,
    )
    # Most of the win must arrive by the default budget region.
    first = rows[0]
    knee = rows[4]  # budget 40
    last = rows[-1]
    for column in range(1, 1 + len(WORKLOADS)):
        assert knee[column] < first[column], "no speedup by budget 40?"
        remaining = (knee[column] - last[column]) / knee[column]
        assert remaining < 0.35, "the knee should be mostly flat after 40"
