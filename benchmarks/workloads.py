"""Benchmark workload programs.

Each workload is (name, scheme source, expected decoded value).  Sizes
are tuned so a single run executes ~10⁴–10⁶ VM instructions: enough to
swamp the prelude bootstrap, small enough for a Python interpreter loop.
"""

FIB = (
    "fib",
    """
    (define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
    (fib 16)
    """,
    987,
)

TAK = (
    "tak",
    """
    (define (tak x y z)
      (if (not (< y x))
          z
          (tak (tak (- x 1) y z)
               (tak (- y 1) z x)
               (tak (- z 1) x y))))
    (tak 12 8 4)
    """,
    5,
)

SORT = (
    "sort",
    """
    ;; 300 pseudo-random numbers via a linear congruential generator
    (define (randoms n seed acc)
      (if (= n 0)
          acc
          (let ((next (remainder (+ (* seed 1309) 13849) 65536)))
            (randoms (- n 1) next (cons next acc)))))
    (define data (randoms 300 42 '()))
    (define sorted (sort data <))
    (define (ordered? lst)
      (cond ((null? lst) #t)
            ((null? (cdr lst)) #t)
            ((> (car lst) (cadr lst)) #f)
            (else (ordered? (cdr lst)))))
    (if (ordered? sorted) (length sorted) 'broken)
    """,
    300,
)

SIEVE = (
    "sieve",
    """
    (define (sieve limit)
      (let ((flags (make-vector limit #t)))
        (let loop ((i 2) (count 0))
          (if (< i limit)
              (if (vector-ref flags i)
                  (begin
                    (let mark ((j (* i i)))
                      (when (< j limit)
                        (vector-set! flags j #f)
                        (mark (+ j i))))
                    (loop (+ i 1) (+ count 1)))
                  (loop (+ i 1) count))
              count))))
    (sieve 400)
    """,
    78,
)

STRINGS = (
    "strings",
    """
    (define (string-reverse s)
      (list->string (reverse (string->list s))))
    (define base "the quick brown fox jumps over the lazy dog")
    (let loop ((i 0) (hits 0))
      (if (= i 40)
          hits
          (let ((r (string-reverse base)))
            (loop (+ i 1)
                  (if (string=? (string-reverse r) base) (+ hits 1) hits)))))
    """,
    40,
)

ASSOC = (
    "assoc",
    """
    ;; environment-lookup-heavy micro-interpreter style workload
    (define env
      (list (cons 'a 1) (cons 'b 2) (cons 'c 3) (cons 'd 4)
            (cons 'e 5) (cons 'f 6) (cons 'g 7) (cons 'h 8)))
    (define keys '(h g f e d c b a h d a c))
    (define (lookup-all keys acc)
      (if (null? keys)
          acc
          (lookup-all (cdr keys) (+ acc (cdr (assq (car keys) env))))))
    (let loop ((i 0) (total 0))
      (if (= i 150) total (loop (+ i 1) (+ total (lookup-all keys 0)))))
    """,
    150 * (8 + 7 + 6 + 5 + 4 + 3 + 2 + 1 + 8 + 4 + 1 + 3),
)

VECTOR = (
    "vector",
    """
    (define n 1500)
    (define v (make-vector n 0))
    (let fill ((i 0))
      (when (< i n) (vector-set! v i (* i 3)) (fill (+ i 1))))
    (let sum ((i 0) (acc 0))
      (if (= i n) acc (sum (+ i 1) (+ acc (vector-ref v i)))))
    """,
    3 * (1499 * 1500 // 2),
)

DERIV = (
    "deriv",
    """
    (define (constant? e) (number? e))
    (define (variable? e) (symbol? e))
    (define (sum? e) (if (pair? e) (eq? (car e) '+) #f))
    (define (product? e) (if (pair? e) (eq? (car e) '*) #f))
    (define (make-sum a b)
      (cond ((eqv? a 0) b) ((eqv? b 0) a)
            ((if (number? a) (number? b) #f) (+ a b))
            (else (list '+ a b))))
    (define (make-product a b)
      (cond ((eqv? a 0) 0) ((eqv? b 0) 0) ((eqv? a 1) b) ((eqv? b 1) a)
            ((if (number? a) (number? b) #f) (* a b))
            (else (list '* a b))))
    (define (deriv e x)
      (cond ((constant? e) 0)
            ((variable? e) (if (eq? e x) 1 0))
            ((sum? e) (make-sum (deriv (cadr e) x) (deriv (caddr e) x)))
            ((product? e)
             (let ((a (cadr e)) (b (caddr e)))
               (make-sum (make-product a (deriv b x))
                         (make-product (deriv a x) b))))
            (else (error "unknown" e))))
    (define poly '(* (+ (* 3 (* x x)) (+ (* 2 x) 7)) (+ x 1)))
    (define (evaluate e env)
      (cond ((constant? e) e)
            ((variable? e) (cdr (assq e env)))
            ((sum? e) (+ (evaluate (cadr e) env) (evaluate (caddr e) env)))
            (else (* (evaluate (cadr e) env) (evaluate (caddr e) env)))))
    (let loop ((i 0) (acc 0))
      (if (= i 25)
          acc
          (loop (+ i 1)
                (+ acc (evaluate (deriv (deriv poly 'x) 'x)
                                 (list (cons 'x i)))))))
    """,
    # f = (3x²+2x+7)(x+1) = 3x³+5x²+9x+7, so f'' = 18x + 10.
    sum(18 * i + 10 for i in range(25)),
)

ALL_WORKLOADS = [FIB, TAK, SORT, SIEVE, STRINGS, ASSOC, VECTOR, DERIV]
