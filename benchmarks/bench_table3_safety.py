"""Table 3 — cost of safety checks and of check elimination.

Configurations: O unsafe, O safe, O safe without the flow-sensitive
``absint`` pass (CSE-only check elimination), O safe without CSE (so
dominating checks are not removed either), and B safe.  Shape: checks
cost something; CSE claws a share back; the abstract interpreter claws
back strictly more; abstract-safe ≈ hand-coded-safe.
"""

from repro import CompileOptions, OptimizerOptions

from .harness import config_b, config_o, ratio, run_workload, write_table
from .workloads import ASSOC, DERIV, FIB, SORT, VECTOR

WORKLOADS = [FIB, SORT, VECTOR, ASSOC, DERIV]


def safe_no_cse() -> CompileOptions:
    return CompileOptions(optimizer=OptimizerOptions().without("cse"))


def safe_no_absint() -> CompileOptions:
    return CompileOptions(optimizer=OptimizerOptions().without("absint"))


def safe_no_unbox() -> CompileOptions:
    return CompileOptions(optimizer=OptimizerOptions().without("unbox"))


def test_table3_safety(benchmark):
    def build():
        rows = []
        for name, source, expected in WORKLOADS:
            unsafe = run_workload(source, config_o(safety=False), expected).steps
            safe = run_workload(source, config_o(safety=True), expected).steps
            no_unbox = run_workload(source, safe_no_unbox(), expected).steps
            no_absint = run_workload(source, safe_no_absint(), expected).steps
            no_cse = run_workload(source, safe_no_cse(), expected).steps
            base_safe = run_workload(source, config_b(safety=True), expected).steps
            rows.append(
                [
                    name,
                    unsafe,
                    safe,
                    no_unbox,
                    no_absint,
                    no_cse,
                    base_safe,
                    ratio(safe, unsafe),
                    ratio(no_unbox, safe),
                    ratio(no_absint, safe),
                    ratio(no_cse, safe),
                    ratio(safe, base_safe),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "table3_safety.txt",
        "Table 3 — safety-check cost (dynamic instructions, O unless noted)",
        [
            "program",
            "unsafe",
            "safe",
            "safe -unbox",
            "safe -absint",
            "safe -cse",
            "B safe",
            "safe/unsafe",
            "-unbox/safe",
            "-absint/safe",
            "-cse/safe",
            "safe O/B",
        ],
        rows,
    )
    improved = 0
    for row in rows:
        name, unsafe, safe, no_unbox, no_absint, no_cse, base_safe = row[:7]
        assert safe >= unsafe, name            # checks are not free
        assert no_unbox >= safe, name          # unbox never regresses
        if no_unbox > safe:
            improved += 1
        assert no_absint > safe, name          # absint strictly beats CSE-only
        assert no_cse >= safe, name            # CSE never hurts
        assert float(row[11]) <= 1.3, name     # abstract ≈ hand-coded
    # The interprocedural pass strictly lowers dynamic counts on at
    # least half the Table-3 workloads.
    assert improved * 2 >= len(rows), f"unbox improved only {improved} rows"
