"""Table 4 — the price of first-class (dynamic) representation use.

Three ways to read the same field, 200 times each:

* **static** — ``(point-x p)`` where the accessor is a known top-level
  binding (the optimizer open-codes it);
* **first-class** — ``((rep-accessor rep 0) p)`` fetched from the
  descriptor each time (a real closure call);
* **rep-of dispatch** — type-directed: ``((rep-accessor (rep-of p) 0) p)``.

Shape: static ≪ first-class < dispatch; and the dynamic paths still
*work* — same answers — which is the first-class claim.
"""

from repro import decode

from .harness import compiled, config_o, write_table

ITERATIONS = 200

COMMON = """
(define point-rep (make-record-rep 'point '(x y)))
(define make-point (rep-constructor point-rep))
(define point-x (rep-accessor point-rep 0))
(define p (make-point 123 456))
(define (bench-loop n acc body)
  (if (= n 0) acc (bench-loop (- n 1) (body p) body)))
"""

VARIANTS = [
    ("static accessor", "(bench-loop %N% 0 point-x)"),
    (
        "first-class fetch",
        "(bench-loop %N% 0 (lambda (q) ((rep-accessor point-rep 0) q)))",
    ),
    (
        "rep-of dispatch",
        "(bench-loop %N% 0 (lambda (q) ((rep-accessor (rep-of q) 0) q)))",
    ),
]


def _steps(body_expr: str, n: int) -> int:
    source = COMMON + body_expr.replace("%N%", str(n))
    result = compiled(source, config_o()).run()
    assert decode(result) == (123 if n else 0)
    return result.steps


def test_table4_dynamic(benchmark):
    def build():
        rows = []
        for name, body in VARIANTS:
            cost = (_steps(body, ITERATIONS) - _steps(body, 0)) / ITERATIONS
            rows.append([name, f"{cost:.1f}"])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "table4_dynamic.txt",
        "Table 4 — instructions per field access, static vs first-class",
        ["access path", "instructions/op"],
        rows,
    )
    static = float(rows[0][1])
    fetch = float(rows[1][1])
    dispatch = float(rows[2][1])
    assert static < fetch < dispatch
    # "static" here is still a record accessor bound to a runtime
    # descriptor (a closure call + checked load + loop overhead).
    assert static <= 25
