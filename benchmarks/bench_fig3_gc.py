"""Figure 3 — substrate characterization: GC behaviour vs heap size.

Not a paper claim, but a reviewer's due-diligence figure: the
conservative mark-sweep substrate behaves sanely (collection count
falls as the heap grows; the mutator's instruction count is unaffected
because collection happens outside the instruction stream).
"""

from repro import CompileOptions

from .harness import compiled, config_o, write_table
from .workloads import SORT

HEAP_SIZES = [1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 18]


def test_fig3_gc(benchmark):
    name, source, expected = SORT
    program = compiled(source, config_o())

    def build():
        rows = []
        for words in HEAP_SIZES:
            result = program.run(heap_words=words)
            from repro import decode

            assert decode(result) == expected
            rows.append(
                [
                    words,
                    result.machine.heap.gc_count,
                    result.steps,
                    result.words_allocated,
                    result.machine.heap.live_words(),
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "fig3_gc.txt",
        f"Figure 3 — GC behaviour vs heap size ({name} workload)",
        ["heap words", "collections", "instructions", "words allocated", "live at end"],
        rows,
    )
    collections = [row[1] for row in rows]
    assert collections[0] > collections[-1], "bigger heap → fewer GCs"
    steps = {row[2] for row in rows}
    assert len(steps) == 1, "instruction counts must not depend on heap size"
    allocated = {row[3] for row in rows}
    assert len(allocated) == 1
