"""Table 2 — whole-program dynamic instruction counts.

Eight workload programs under the three configurations.  Claim shape:
O/B ≈ 1 (abstract matches hand-coded end to end); U/O ≥ 3.
"""

import pytest

from .harness import config_b, config_o, config_u, ratio, run_workload, write_table
from .workloads import ALL_WORKLOADS

_ROWS_CACHE: dict = {}


def _measure(name, source, expected):
    if name not in _ROWS_CACHE:
        unopt = run_workload(source, config_u(), expected)
        opt = run_workload(source, config_o(), expected)
        base = run_workload(source, config_b(), expected)
        _ROWS_CACHE[name] = (unopt, opt, base)
    return _ROWS_CACHE[name]


@pytest.mark.parametrize("name,source,expected", ALL_WORKLOADS, ids=[w[0] for w in ALL_WORKLOADS])
def test_workload_timed(benchmark, name, source, expected):
    """Times the optimized configuration's VM run (pytest-benchmark)."""
    from .harness import compiled

    program = compiled(source, config_o())
    result = benchmark.pedantic(program.run, rounds=3, iterations=1)
    from repro import decode

    assert decode(result) == expected
    _measure(name, source, expected)  # warm the table cache


def test_table2(benchmark):
    def build():
        rows = []
        # Every run includes the library bootstrap (symbol interning,
        # descriptor construction); this row lets readers subtract it.
        boot_u = run_workload("'ready", config_u()).steps
        boot_o = run_workload("'ready", config_o()).steps
        boot_b = run_workload("'ready", config_b()).steps
        rows.append(
            ["<bootstrap>", boot_u, boot_o, boot_b,
             ratio(boot_o, boot_b), ratio(boot_u, boot_o), "-"]
        )
        for name, source, expected in ALL_WORKLOADS:
            unopt, opt, base = _measure(name, source, expected)
            rows.append(
                [
                    name,
                    unopt.steps,
                    opt.steps,
                    base.steps,
                    ratio(opt.steps, base.steps),
                    ratio(unopt.steps, opt.steps),
                    opt.words_allocated,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "table2_programs.txt",
        "Table 2 — dynamic instruction counts, whole programs (SAFE)",
        ["program", "U", "O", "B", "O/B", "U/O", "O words alloc"],
        rows,
    )
    for name, unopt, opt, base, ob, uo, _ in rows:
        assert float(ob) <= 1.3, (name, "optimized vs baseline", ob)
        if name != "<bootstrap>":
            assert float(uo) >= 2.0, (name, "unoptimized speedup", uo)
