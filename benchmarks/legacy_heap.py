"""The pre-overhaul heap allocator, preserved verbatim as the baseline
for ``bench_alloc.py``.

This is the allocator the repo shipped before the size-class/bump-region
overhaul of :mod:`repro.vm.heap`: linear first-fit over an address-ordered
free-extent list, per-word zeroing, set-based marking, and a full
free-list rebuild (sorting every live block) on each collection.  It has
no ``bump`` attribute, which is exactly how the execution engines detect
it and fall back to their out-of-line allocation path — so benchmarking
against it measures the old end-to-end allocation cost, not just the old
heap with new engine fast paths.

Do not "fix" or modernise this file; its value is that it does not move.
"""

from __future__ import annotations

from repro.errors import HeapExhausted, VMError
from repro.prims import WORD_MASK


class LegacyHeap:
    def __init__(self, size_words: int = 1 << 20):
        if size_words < 16:
            raise ValueError("heap too small")
        self.size_words = size_words
        self.mem = [0] * size_words
        #: base word-index -> payload word count, for every live block
        self.blocks: dict[int, int] = {}
        #: free extents as (base word-index, word length), address-ordered
        self.free: list[tuple[int, int]] = [(1, size_words - 1)]
        # word 0 reserved so that byte address 0 is never a valid block
        #: low tags that the library (or compiler) declared to be pointers
        self.pointer_tags: set[int] = set()
        self.gc_count = 0
        self.words_allocated = 0

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------

    def load(self, byte_address: int) -> int:
        if byte_address & 7:
            raise VMError(f"unaligned load at {byte_address:#x}")
        index = byte_address >> 3
        if not (0 <= index < self.size_words):
            raise VMError(f"load out of heap bounds at {byte_address:#x}")
        return self.mem[index]

    def store(self, byte_address: int, value: int) -> None:
        if byte_address & 7:
            raise VMError(f"unaligned store at {byte_address:#x}")
        index = byte_address >> 3
        if not (0 <= index < self.size_words):
            raise VMError(f"store out of heap bounds at {byte_address:#x}")
        self.mem[index] = value & WORD_MASK

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate(self, nwords: int, tag: int, roots) -> int:
        if nwords < 0 or nwords > self.size_words:
            raise VMError(f"bad allocation size {nwords}")
        total = nwords + 1
        base = self._take(total)
        if base is None:
            self.collect(roots())
            base = self._take(total)
            if base is None:
                raise HeapExhausted(
                    f"heap exhausted allocating {nwords} words "
                    f"({len(self.blocks)} live blocks)"
                )
        self.mem[base] = nwords
        for i in range(base + 1, base + total):
            self.mem[i] = 0
        self.blocks[base] = nwords
        self.words_allocated += total
        return ((base << 3) | (tag & 7)) & WORD_MASK

    def _take(self, total: int) -> int | None:
        for i, (base, length) in enumerate(self.free):
            if length >= total:
                if length == total:
                    self.free.pop(i)
                else:
                    self.free[i] = (base + total, length - total)
                return base
        return None

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def collect(self, roots) -> int:
        self.gc_count += 1
        marked: set[int] = set()
        stack = [word for word in roots]
        while stack:
            word = stack.pop()
            base = self._block_of(word)
            if base is None or base in marked:
                continue
            marked.add(base)
            nwords = self.blocks[base]
            stack.extend(self.mem[base + 1 : base + 1 + nwords])
        reclaimed = 0
        for base in list(self.blocks):
            if base not in marked:
                reclaimed += self.blocks[base] + 1
                del self.blocks[base]
        self._rebuild_free_list()
        return reclaimed

    def _block_of(self, word: int) -> int | None:
        tag = word & 7
        if tag not in self.pointer_tags:
            return None
        base = (word & WORD_MASK) >> 3
        if base in self.blocks:
            return base
        return None

    def _rebuild_free_list(self) -> None:
        self.free = []
        position = 1
        for base in sorted(self.blocks):
            if base > position:
                self.free.append((position, base - position))
            position = base + self.blocks[base] + 1
        if position < self.size_words:
            self.free.append((position, self.size_words - position))

    # ------------------------------------------------------------------

    def live_words(self) -> int:
        return sum(n + 1 for n in self.blocks.values())

    def register_pointer_tag(self, tag: int) -> None:
        if not (0 <= tag <= 7):
            raise VMError(f"bad pointer tag {tag}")
        self.pointer_tags.add(tag)
