"""Allocation-throughput comparison — writes ``BENCH_gc.json``.

Times allocation-dense workloads on the threaded engine under two
allocators:

    legacy      — the pre-overhaul heap (``legacy_heap.py``): linear
                  first-fit over an address-ordered extent list,
                  per-word zeroing, full free-list rebuild per GC.
                  Having no ``bump`` attribute, it also disables the
                  engines' inline allocation fast path — exactly the
                  pre-overhaul end-to-end configuration.
    overhauled  — the current heap: bump-region fast path inlined in
                  the engine, size-class bins, lazy sweep, occupancy
                  trigger (the shipped defaults).

The harness mirrors ``bench_speed.py``: counting disabled, reps
interleaved, per-configuration minimum kept.  Each workload carries its
own (deliberately small) heap size so every run goes through many
collections — this measures the allocator and collector, not just the
mutator.  The workloads are chosen to be allocation-*dense*: loop and
arithmetic overhead is identical under both allocators, so a workload
that spends most of its time elsewhere would only dilute the very
difference this benchmark exists to gate on (``bench_speed.py`` already
tracks whole-program throughput on the mixed workloads).

Run as a script::

    python benchmarks/bench_alloc.py              # full reps
    python benchmarks/bench_alloc.py --quick      # CI smoke (fewer reps)
    python benchmarks/bench_alloc.py --check      # exit 1 on regression

or through pytest (excluded from tier-1 by the ``slow`` marker)::

    pytest benchmarks/bench_alloc.py -m slow --no-header

``--check`` enforces the acceptance gates: the overhauled allocator
must not be slower than legacy on any workload, and the geomean
speedup must be at least 1.4x.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    sys.path.insert(0, os.path.dirname(__file__))
    from legacy_heap import LegacyHeap
else:
    from .legacy_heap import LegacyHeap

from repro import CompileOptions, compile_source, decode
from repro.sexpr import Symbol
from repro.vm.machine import Machine

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_gc.json")

GEOMEAN_FLOOR = 1.4

# Each workload: (name, source, expected decoded value, heap_words).

VECTOR_ALLOC = (
    "vector-alloc",
    # Raw 64-word blocks through %alloc, no initialising writes: the
    # purest allocation measurement available from Scheme.  Stresses
    # block zeroing (legacy zeroes word-by-word in Python) and the
    # large-extent path (64 payload words is above the bin ceiling).
    """
    (let loop ((i 0))
      (if (= i 6000) 'ok
          (begin (%alloc (%raw 64) (%raw 2))
                 (%alloc (%raw 64) (%raw 2))
                 (loop (+ i 1)))))
    """,
    Symbol("ok"),
    1 << 15,
)

MIXED_ALLOC = (
    "mixed-alloc",
    # Interleaved small/medium/large raw blocks: exercises the exact-fit
    # bins (4 and 12 words), the sorted large list (40 words), and the
    # legacy first-fit scan's worst case (heterogeneous extent sizes).
    """
    (let loop ((i 0))
      (if (= i 4000) 'ok
          (begin (%alloc (%raw 4) (%raw 2))
                 (%alloc (%raw 12) (%raw 2))
                 (%alloc (%raw 40) (%raw 2))
                 (loop (+ i 1)))))
    """,
    Symbol("ok"),
    1 << 14,
)

CONS_CHURN = (
    "cons-churn",
    # Unrolled pair allocation: the cons fast path (ALLOCI nwords=2) with
    # minimal loop overhead.  All garbage, so collections are cheap and
    # frequent — dominated by allocator, sweep, and trigger costs.
    """
    (let loop ((i 0))
      (if (= i 12000) 'ok
          (begin (cons i i) (cons i i) (cons i i) (cons i i)
                 (cons i i) (cons i i) (cons i i) (cons i i)
                 (loop (+ i 1)))))
    """,
    Symbol("ok"),
    1 << 14,
)

FRAG_CHURN = (
    "frag-churn",
    # Builds a live list interleaved with garbage conses, then churns:
    # the live blocks pepper the heap, so free space is fragmented and
    # the allocator must work around surviving data every cycle.
    """
    (define (build i keep)
      (if (= i 1200) keep
          (begin (cons i i) (build (+ i 1) (cons i keep)))))
    (define (churn i)
      (if (= i 20000) 'ok (begin (cons i i) (churn (+ i 1)))))
    (define kept (build 0 '()))
    (churn 0)
    """,
    Symbol("ok"),
    1 << 14,
)

GC_PRESSURE = (
    "gc-pressure",
    # 600 live conses in a tiny heap: every collection traces real data
    # and reclaims little, so GC frequency is high and pause cost (mark
    # bitmap vs. mark set, lazy vs. eager sweep) dominates.
    """
    (define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
    (define live (build 600))
    (let loop ((i 0))
      (if (= i 4000) (car live)
          (begin (cons i i) (cons i i) (cons i i) (cons i i)
                 (loop (+ i 1)))))
    """,
    600,
    1 << 13,
)

ALLOC_WORKLOADS = [VECTOR_ALLOC, MIXED_ALLOC, CONS_CHURN, FRAG_CHURN, GC_PRESSURE]

#: "legacy" is the baseline all ratios divide by.
CONFIGS = ["legacy", "overhauled"]

_CLOSURE_TAG = 7


def _make_machine(program, key, heap_words):
    machine = Machine(
        program.vm_program,
        heap_words=heap_words,
        engine="threaded",
        count_instructions=False,
    )
    if key == "legacy":
        # Swap the allocator before the engine binds any heap structure
        # (handler tables are built lazily, during run).  No ``bump``
        # attribute -> the engine builds slow-path-only ALLOC handlers.
        heap = LegacyHeap(heap_words)
        heap.register_pointer_tag(_CLOSURE_TAG)
        machine.heap = heap
    return machine


def measure(reps: int) -> dict:
    """Interleaved min-of-``reps`` wall-clock times, as a report dict."""
    programs = {
        name: compile_source(source, CompileOptions())
        for name, source, _expected, _hw in ALLOC_WORKLOADS
    }
    best: dict = {}
    words: dict = {}
    gc_counts: dict = {}
    for _ in range(reps):
        for name, _source, expected, heap_words in ALLOC_WORKLOADS:
            for key in CONFIGS:
                machine = _make_machine(programs[name], key, heap_words)
                start = time.perf_counter()
                result = machine.run()
                elapsed = time.perf_counter() - start
                result.machine = machine  # decode reads the heap
                value = decode(result)
                assert value == expected, (name, key, value, expected)
                slot = (name, key)
                best[slot] = min(best.get(slot, math.inf), elapsed)
                words[slot] = result.words_allocated
                gc_counts[slot] = result.gc_count

    workloads = {}
    ratios = []
    for name, _source, _expected, heap_words in ALLOC_WORKLOADS:
        baseline = best[(name, "legacy")]
        entry = {
            "heap_words": heap_words,
            "times_ms": {},
            "speedups": {},
            "mwords_per_s": {},
            "gc_count": {},
        }
        for key in CONFIGS:
            seconds = best[(name, key)]
            entry["times_ms"][key] = round(seconds * 1000, 3)
            entry["speedups"][key] = round(baseline / seconds, 3)
            entry["mwords_per_s"][key] = round(words[(name, key)] / seconds / 1e6, 3)
            entry["gc_count"][key] = gc_counts[(name, key)]
        workloads[name] = entry
        ratios.append(baseline / best[(name, "overhauled")])
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return {
        "baseline": "legacy",
        "headline": "overhauled",
        "engine": "threaded",
        "reps": reps,
        "python": sys.version.split()[0],
        "geomean_speedup": round(geomean, 3),
        "geomean_floor": GEOMEAN_FLOOR,
        "workloads": workloads,
    }


def check(report: dict) -> list[str]:
    """Acceptance failures (empty == pass)."""
    failures = []
    for name, entry in report["workloads"].items():
        speedup = entry["speedups"]["overhauled"]
        if speedup < 1.0:
            failures.append(
                f"{name}: overhauled allocator is slower than legacy "
                f"({speedup:.3f}x)"
            )
    if report["geomean_speedup"] < GEOMEAN_FLOOR:
        failures.append(
            f"geomean allocation speedup {report['geomean_speedup']:.3f}x "
            f"below the {GEOMEAN_FLOOR}x floor"
        )
    return failures


def render(report: dict) -> str:
    lines = [
        f"{'workload':14s} {'heap':>6s} {'legacy':>10s} {'overhauled':>11s} "
        f"{'speedup':>8s} {'Mwords/s':>9s}"
    ]
    for name, entry in report["workloads"].items():
        lines.append(
            f"{name:14s} {entry['heap_words']:6d} "
            f"{entry['times_ms']['legacy']:8.1f}ms "
            f"{entry['times_ms']['overhauled']:9.1f}ms "
            f"{entry['speedups']['overhauled']:7.2f}x "
            f"{entry['mwords_per_s']['overhauled']:9.2f}"
        )
    lines.append(
        f"geomean allocation speedup: {report['geomean_speedup']:.3f}x"
        f" (floor {report['geomean_floor']}x)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer reps (CI smoke test)"
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="interleaved rounds (default 8, quick 3)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if the overhauled allocator loses to legacy anywhere "
        "or the geomean is below the floor",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="JSON report path (default: BENCH_gc.json at the repo root)",
    )
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (3 if args.quick else 8)
    if reps < 1:
        parser.error(f"--reps must be at least 1 (got {reps})")

    report = measure(reps)
    print(render(report))
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(args.output)}")

    if args.check:
        failures = check(report)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


# ----------------------------------------------------------------------
# pytest entry point (slow: excluded from tier-1)
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script use without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.slow
    def test_allocation_speedup(tmp_path):
        report = measure(reps=3)
        print(render(report))
        failures = check(report)
        assert not failures, failures


if __name__ == "__main__":
    sys.exit(main())
