"""Shared benchmark harness.

The paper-shape metrics are deterministic (static and dynamic VM
instruction counts); pytest-benchmark additionally times the VM runs.
Every table/figure is written to ``benchmarks/results/`` and printed, so
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation.

Configurations (see EXPERIMENTS.md):
  U — representation-type prelude, optimizer off
  O — representation-type prelude, full optimizer
  B — hand-coded prelude ("traditional"), full optimizer
"""

from __future__ import annotations

import os

from repro import CompileOptions, OptimizerOptions, compile_source, decode

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def config_u(safety: bool = True) -> CompileOptions:
    return CompileOptions(optimizer=OptimizerOptions.none(), safety=safety)


def config_o(safety: bool = True) -> CompileOptions:
    return CompileOptions(safety=safety)


def config_b(safety: bool = True) -> CompileOptions:
    return CompileOptions.baseline(safety=safety)


def keep_globals(options: CompileOptions) -> CompileOptions:
    optimizer = OptimizerOptions(**options.optimizer.__dict__)
    optimizer.prune_globals = False
    return CompileOptions(
        optimizer=optimizer, prelude=options.prelude, safety=options.safety
    )


_COMPILE_CACHE: dict = {}


def compiled(source: str, options: CompileOptions):
    key = (
        source,
        options.prelude,
        options.safety,
        options.fuse,
        tuple(sorted(options.optimizer.__dict__.items())),
    )
    hit = _COMPILE_CACHE.get(key)
    if hit is None:
        hit = compile_source(source, options)
        _COMPILE_CACHE[key] = hit
    return hit


def run_workload(source: str, options: CompileOptions, expected=None):
    """Compile, run, sanity-check, return the RunResult."""
    result = compiled(source, options).run()
    if expected is not None:
        value = decode(result)
        assert value == expected, f"workload produced {value!r}, wanted {expected!r}"
    return result


def write_table(filename: str, title: str, header: list[str], rows: list[list]):
    """Format, print, and persist one table."""
    widths = [
        max(len(str(cell)) for cell in [header[i]] + [row[i] for row in rows])
        for i in range(len(header))
    ]

    def fmt(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    lines = [title, "=" * len(title), fmt(header), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    text = "\n".join(lines) + "\n"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, filename), "w") as handle:
        handle.write(text)
    print("\n" + text)
    return text


def ratio(a: float, b: float) -> str:
    return f"{a / b:.2f}" if b else "inf"
