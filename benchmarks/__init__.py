"""Benchmark suite regenerating the paper-shape tables and figures."""
