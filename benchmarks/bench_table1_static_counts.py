"""Table 1 — per-operation cost under the three configurations.

Two views per operation:

* **dynamic instructions/op** — a 64-iteration accumulate loop calling a
  one-operation probe, minus the same loop with an identity probe body.
  Meaningful in every configuration (in U the cost is a real call into
  the abstract library).
* **static instructions** — the probe procedure's compiled size under O
  and B, where the operation is open-coded.

Paper claims checked: O ≈ B (abstract matches hand-coded), U ≫ O.
"""

from .harness import (
    compiled,
    config_b,
    config_o,
    config_u,
    keep_globals,
    write_table,
)

# operation name -> (call expression, argument definitions).  Arguments
# are read out of quoted structure so the optimizer cannot constant-fold
# the probe body away (the cost measured is the op on runtime values).
_LIST_ARGS = "(define x '(1 2 3)) (define y (car '(1))) (define z (car '(9)))"
_VEC_ARGS = (
    "(define x (make-vector 8 0)) (define y (car '(2))) (define z (car '(9)))"
)
_FIX_ARGS = "(define x (car '(6))) (define y (car '(7))) (define z (car '(8)))"

OPS = [
    ("car", "(car x)", _LIST_ARGS),
    ("cdr", "(cdr x)", _LIST_ARGS),
    ("cons", "(cons y z)", _FIX_ARGS),
    ("pair?", "(pair? x)", _LIST_ARGS),
    ("null?", "(null? x)", "(define x (cdr '(1))) (define y (car '(1))) (define z y)"),
    ("vector-ref", "(vector-ref x y)", _VEC_ARGS),
    ("vector-set!", "(vector-set! x y z)", _VEC_ARGS),
    ("vector-length", "(vector-length x)", _VEC_ARGS),
    ("fx +", "(+ y z)", _FIX_ARGS),
    ("fx -", "(- y z)", _FIX_ARGS),
    ("fx *", "(* y z)", _FIX_ARGS),
    ("fx <", "(< y z)", _FIX_ARGS),
    ("eq?", "(eq? y z)", _FIX_ARGS),
    (
        "char->integer",
        "(char->integer x)",
        '(define x (string-ref "a" 0)) (define y (car \'(1))) (define z y)',
    ),
]

ITERATIONS = 64


def _loop_program(call: str, setup: str) -> str:
    return f"""
    {setup}
    (define (probe x y z) {call})
    (define (bench-loop n acc)
      (if (= n 0) acc (bench-loop (- n 1) (probe x y z))))
    (bench-loop {ITERATIONS} 0)
    """


def dynamic_per_op(call: str, setup: str, options) -> float:
    with_op = compiled(_loop_program(call, setup), options).run().steps
    baseline = compiled(_loop_program("y", setup), options).run().steps
    return (with_op - baseline) / ITERATIONS


def static_count(call: str, options) -> int:
    source = f"(define (probe x y z) {call})\n'done"
    return compiled(source, keep_globals(options)).static_instruction_count("probe")


def _rows(safety: bool):
    rows = []
    for name, call, setup in OPS:
        u_dyn = dynamic_per_op(call, setup, config_u(safety))
        o_dyn = dynamic_per_op(call, setup, config_o(safety))
        b_dyn = dynamic_per_op(call, setup, config_b(safety))
        o_stat = static_count(call, config_o(safety))
        b_stat = static_count(call, config_b(safety))
        rows.append(
            [
                name,
                f"{u_dyn:.1f}",
                f"{o_dyn:.1f}",
                f"{b_dyn:.1f}",
                o_stat,
                b_stat,
                f"{u_dyn / max(o_dyn, 0.5):.1f}x",
            ]
        )
    return rows


HEADER = ["operation", "U dyn/op", "O dyn/op", "B dyn/op", "O static", "B static", "U/O"]


def test_table1_unsafe(benchmark):
    rows = benchmark.pedantic(lambda: _rows(safety=False), rounds=1, iterations=1)
    write_table(
        "table1_unsafe.txt",
        "Table 1a — per-operation instruction costs (UNSAFE)",
        HEADER,
        rows,
    )
    for name, u_dyn, o_dyn, b_dyn, o_stat, b_stat, _ in rows:
        assert o_stat <= b_stat, (name, o_stat, b_stat)
        assert float(o_dyn) <= float(b_dyn) + 0.5, name
        # eq? is a single comparison in every configuration: allow ties.
        assert float(u_dyn) >= float(o_dyn), name


def test_table1_safe(benchmark):
    rows = benchmark.pedantic(lambda: _rows(safety=True), rounds=1, iterations=1)
    write_table(
        "table1_safe.txt",
        "Table 1b — per-operation instruction costs (SAFE)",
        HEADER,
        rows,
    )
    for name, u_dyn, o_dyn, b_dyn, o_stat, b_stat, _ in rows:
        assert o_stat <= b_stat + 1, (name, o_stat, b_stat)
        assert float(u_dyn) >= float(o_dyn), name
