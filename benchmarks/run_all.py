"""Regenerate every table and figure without pytest.

Run:  python -m benchmarks.run_all        (from the repository root)

Deterministic: all numbers are VM instruction counts, not wall time.
Writes the formatted tables into benchmarks/results/ and prints them.
"""

from __future__ import annotations

import sys
import time


def main() -> int:
    t0 = time.time()
    from . import (
        bench_fig1_ablation,
        bench_fig2_inline_budget,
        bench_fig3_gc,
        bench_table1_static_counts,
        bench_table2_programs,
        bench_table3_safety,
        bench_table4_dynamic,
        bench_table5_codesize,
    )
    from .harness import write_table
    from .workloads import ALL_WORKLOADS

    class _FakeBenchmark:
        def pedantic(self, fn, rounds=1, iterations=1):
            return fn()

    fake = _FakeBenchmark()

    print("Table 1 (this is the slowest table: ~90 compiles)…")
    bench_table1_static_counts.test_table1_unsafe(fake)
    bench_table1_static_counts.test_table1_safe(fake)

    print("Table 2…")
    bench_table2_programs.test_table2(fake)

    print("Figure 1…")
    bench_fig1_ablation.test_fig1_ablation(fake)

    print("Figure 2…")
    bench_fig2_inline_budget.test_fig2_inline_budget(fake)

    print("Table 3…")
    bench_table3_safety.test_table3_safety(fake)

    print("Table 4…")
    bench_table4_dynamic.test_table4_dynamic(fake)

    print("Table 5…")
    bench_table5_codesize.test_table5_codesize(fake)

    print("Figure 3…")
    bench_fig3_gc.test_fig3_gc(fake)

    print(f"\nAll tables regenerated in {time.time() - t0:.0f}s "
          f"(see benchmarks/results/).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
