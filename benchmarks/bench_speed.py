"""Wall-clock dispatch-engine comparison — writes ``BENCH_speed.json``.

Times the Table-2 workloads under five configurations:

    naive       — naive engine, unfused code     (the baseline)
    naive+fuse  — naive engine, fused code
    threaded    — threaded engine, unfused code
    threaded+fuse — threaded engine, fused code
    compiled    — compile-to-Python engine, fused code  (the headline)

Counting is disabled (``count_instructions=False``) so what is measured
is dispatch + execution, the quantity the engines differ in.  Every
machine is *warmed* with one untimed run before measurement: the
threaded engine builds handler tables and the compiled engine emits
Python functions on first execution, and those one-time costs belong
to startup, not to the steady-state dispatch rate this benchmark
compares (the JSON reports the warmup cost separately as
``compile_ms``).  Timed reps are *interleaved* (every configuration is
sampled in each round, via ``Machine.reset()``) and the
per-configuration minimum is kept: the minimum is noise-free on a
quiet machine and interleaving keeps slow drift from biasing one
configuration.

Run as a script::

    python benchmarks/bench_speed.py              # full reps
    python benchmarks/bench_speed.py --quick      # CI smoke (fewer reps)
    python benchmarks/bench_speed.py --check      # exit 1 on regression

or through pytest (excluded from tier-1 by the ``slow`` marker)::

    pytest benchmarks/bench_speed.py -m slow --no-header

``--check`` enforces the acceptance gates: threaded+fuse must not be
slower than naive on any workload and its geomean speedup must be at
least 1.3x; the compiled engine must not be slower than threaded+fuse
on any workload and its geomean speedup over naive must be at least
4.0x.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

if __package__ in (None, ""):  # running as a script
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    from workloads import ALL_WORKLOADS
else:
    from .workloads import ALL_WORKLOADS

from repro import CompileOptions, compile_source, decode
from repro.vm.machine import Machine

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_speed.json")

#: (key, fused?, engine); "naive" is the baseline all ratios divide by.
CONFIGS = [
    ("naive", False, "naive"),
    ("naive+fuse", True, "naive"),
    ("threaded", False, "threaded"),
    ("threaded+fuse", True, "threaded"),
    ("compiled", True, "compiled"),
]

GEOMEAN_FLOOR = 1.3
COMPILED_GEOMEAN_FLOOR = 4.0


def _compile_workloads():
    programs = {}
    for name, source, expected in ALL_WORKLOADS:
        for fused in (False, True):
            options = CompileOptions()
            options.fuse = fused
            programs[(name, fused)] = compile_source(source, options)
    return programs


def _geomean(ratios: list[float]) -> float:
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def measure(reps: int) -> dict:
    """Interleaved min-of-``reps`` wall-clock times, as a report dict."""
    programs = _compile_workloads()
    machines: dict = {}
    warmup_ms: dict = {}
    # warm every machine once (untimed for the comparison): handler
    # tables and emitted functions are startup costs, reported apart
    for name, _source, expected in ALL_WORKLOADS:
        for key, fused, engine in CONFIGS:
            machine = Machine(
                programs[(name, fused)].vm_program,
                engine=engine,
                count_instructions=False,
            )
            start = time.perf_counter()
            result = machine.run()
            warm = time.perf_counter() - start
            result.machine = machine  # decode reads the heap
            value = decode(result)
            assert value == expected, (name, key, value, expected)
            machines[(name, key)] = machine
            warmup_ms[(name, key)] = warm * 1000

    best: dict = {}
    for _ in range(reps):
        for name, _source, expected in ALL_WORKLOADS:
            for key, _fused, _engine in CONFIGS:
                machine = machines[(name, key)]
                machine.reset()
                start = time.perf_counter()
                result = machine.run()
                elapsed = time.perf_counter() - start
                result.machine = machine
                value = decode(result)
                assert value == expected, (name, key, value, expected)
                slot = (name, key)
                best[slot] = min(best.get(slot, math.inf), elapsed)

    workloads = {}
    threaded_ratios = []
    compiled_ratios = []
    for name, _source, _expected in ALL_WORKLOADS:
        baseline = best[(name, "naive")]
        entry = {"times_ms": {}, "speedups": {}, "compile_ms": {}}
        for key, _fused, _engine in CONFIGS:
            seconds = best[(name, key)]
            entry["times_ms"][key] = round(seconds * 1000, 3)
            entry["speedups"][key] = round(baseline / seconds, 3)
            entry["compile_ms"][key] = round(
                max(warmup_ms[(name, key)] - seconds * 1000, 0.0), 3
            )
        workloads[name] = entry
        threaded_ratios.append(baseline / best[(name, "threaded+fuse")])
        compiled_ratios.append(baseline / best[(name, "compiled")])
    return {
        "baseline": "naive",
        "headline": "compiled",
        "reps": reps,
        "python": sys.version.split()[0],
        "geomean_speedup": round(_geomean(threaded_ratios), 3),
        "geomean_floor": GEOMEAN_FLOOR,
        "compiled_geomean_speedup": round(_geomean(compiled_ratios), 3),
        "compiled_geomean_floor": COMPILED_GEOMEAN_FLOOR,
        "workloads": workloads,
    }


def check(report: dict) -> list[str]:
    """Acceptance failures (empty == pass)."""
    failures = []
    for name, entry in report["workloads"].items():
        speedup = entry["speedups"]["threaded+fuse"]
        if speedup < 1.0:
            failures.append(
                f"{name}: threaded+fuse is slower than naive ({speedup:.3f}x)"
            )
        compiled = entry["speedups"]["compiled"]
        if compiled < speedup:
            failures.append(
                f"{name}: compiled is slower than threaded+fuse "
                f"({compiled:.3f}x vs {speedup:.3f}x)"
            )
    if report["geomean_speedup"] < GEOMEAN_FLOOR:
        failures.append(
            f"geomean threaded+fuse speedup {report['geomean_speedup']:.3f}x "
            f"below the {GEOMEAN_FLOOR}x floor"
        )
    if report["compiled_geomean_speedup"] < COMPILED_GEOMEAN_FLOOR:
        failures.append(
            f"geomean compiled speedup "
            f"{report['compiled_geomean_speedup']:.3f}x "
            f"below the {COMPILED_GEOMEAN_FLOOR}x floor"
        )
    return failures


def render(report: dict) -> str:
    keys = [key for key, _fused, _engine in CONFIGS]
    lines = [
        f"{'workload':10s} {'naive':>9s} "
        + " ".join(f"{k:>13s}" for k in keys[1:])
    ]
    for name, entry in report["workloads"].items():
        cells = [f"{entry['times_ms']['naive']:8.1f}ms"]
        for key in keys[1:]:
            cells.append(f"{entry['speedups'][key]:12.2f}x")
        lines.append(f"{name:10s} " + " ".join(cells))
    lines.append(
        f"geomean threaded+fuse speedup: {report['geomean_speedup']:.3f}x"
        f" (floor {report['geomean_floor']}x)"
    )
    lines.append(
        f"geomean compiled speedup: "
        f"{report['compiled_geomean_speedup']:.3f}x"
        f" (floor {report['compiled_geomean_floor']}x)"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="fewer reps (CI smoke test)"
    )
    parser.add_argument(
        "--reps", type=int, default=None, help="interleaved rounds (default 8, quick 3)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if threaded+fuse loses to naive anywhere, compiled "
        "loses to threaded+fuse anywhere, or either geomean is below "
        "its floor",
    )
    parser.add_argument(
        "--output",
        default=DEFAULT_OUTPUT,
        help="JSON report path (default: BENCH_speed.json at the repo root)",
    )
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (3 if args.quick else 8)
    if reps < 1:
        parser.error(f"--reps must be at least 1 (got {reps})")

    report = measure(reps)
    print(render(report))
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.normpath(args.output)}")

    if args.check:
        failures = check(report)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


# ----------------------------------------------------------------------
# pytest entry point (slow: excluded from tier-1)
# ----------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - script use without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.slow
    def test_engine_speedup(tmp_path):
        report = measure(reps=3)
        print(render(report))
        failures = check(report)
        assert not failures, failures


if __name__ == "__main__":
    sys.exit(main())
