"""Figure 1 — optimization ablation.

Which of the "few generally-useful transformations" carries the claim?
Each transformation is disabled in turn; the series reports the slowdown
relative to the full optimizer on four representative workloads.
"""

from repro import CompileOptions, OptimizerOptions

from .harness import config_o, run_workload, write_table
from .workloads import ASSOC, DERIV, FIB, VECTOR

WORKLOADS = [FIB, VECTOR, ASSOC, DERIV]
FEATURES = ["inline", "fold", "algebra", "cse", "absint", "unbox", "dce"]


def ablated(feature: str) -> CompileOptions:
    return CompileOptions(optimizer=OptimizerOptions().without(feature))


def test_fig1_ablation(benchmark):
    def build():
        rows = []
        for name, source, expected in WORKLOADS:
            full = run_workload(source, config_o(), expected).steps
            row = [name, full]
            for feature in FEATURES:
                steps = run_workload(source, ablated(feature), expected).steps
                row.append(f"{steps / full:.2f}x")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    write_table(
        "fig1_ablation.txt",
        "Figure 1 — slowdown when disabling one transformation (vs full O)",
        ["program", "full O"] + [f"-{f}" for f in FEATURES],
        rows,
    )
    # Inlining is the linchpin: disabling it must hurt substantially.
    for row in rows:
        no_inline = float(row[2].rstrip("x"))
        assert no_inline >= 1.5, row
    # Every ablation is a slowdown or neutral (never a speedup > 5%).
    for row in rows:
        for cell in row[2:]:
            assert float(cell.rstrip("x")) >= 0.95, row
